"""Figure 9: throughput scalability with concurrent instances (2 MB map).

(a) per-benchmark throughput normalized to the single-instance run, for
1–12 instances — both fuzzers fall short of 1:1 scaling with a 2 MB
map, and AFL's total throughput *decreases* beyond 4 instances
(capacity-share eviction + bandwidth saturation);
(b) BigMap's speedup over AFL at equal instance counts — super-linear
in the instance count because AFL degrades as BigMap holds
(paper averages: 4.9x / 9.2x / 13.8x at 4 / 8 / 12).

The steady-state execution *shapes* come from real single-instance
campaigns; the contended rates come from the shared-LLC + bandwidth
fixpoint (:func:`repro.memsim.contention.solve_parallel`), evaluated at
every instance count — the same separation the paper's hardware imposes
(one fuzzing process per core, contention only through the uncore).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.reporting import render_table
from ..analysis.throughput import arithmetic_mean
from ..memsim.contention import InstanceLoad, solve_parallel
from ..target import TABLE2_BENCHMARKS
from .common import BenchmarkCache, Profile, get_profile, throughput_probe

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig9"

#: Figure 9 fixes the map at 2 MB.
FIG9_MAP_SIZE = 1 << 21
INSTANCE_COUNTS: Sequence[int] = tuple(range(1, 13))
SPEEDUP_COUNTS = (1, 4, 8, 12)


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks: List[str] = None) -> Dict[str, dict]:
    """Per-benchmark scaling curves.

    Returns ``{benchmark: {fuzzer: {k: total_rate}}}``.
    """
    cache = cache or BenchmarkCache()
    names = benchmarks or [b.name for b in TABLE2_BENCHMARKS]
    out: Dict[str, dict] = {}
    for name in names:
        built = cache.get(name, profile.scale, profile.seed_scale)
        out[name] = {}
        for fuzzer in ("afl", "bigmap"):
            probe = throughput_probe(name, fuzzer, FIG9_MAP_SIZE, built,
                                     profile)
            # Recover the campaign's calibrated model for the load.
            from ..fuzzer import Campaign, CampaignConfig
            campaign = Campaign(CampaignConfig(
                benchmark=name, fuzzer=fuzzer, map_size=FIG9_MAP_SIZE,
                scale=profile.scale, seed_scale=profile.seed_scale,
                virtual_seconds=1.0, max_real_execs=1), built=built)
            campaign.start()
            load = InstanceLoad(campaign.model, probe.mean_shape)
            rates = {}
            for k in INSTANCE_COUNTS:
                solved = solve_parallel([load] * k,
                                        machine=campaign.model.machine)
                rates[k] = solved.total_rate
            out[name][fuzzer] = rates
    return out


def run(profile: Profile, cache: BenchmarkCache = None,
        benchmarks: List[str] = None) -> str:
    data = compute(profile, cache, benchmarks)
    # (a) normalized average scaling curves.
    lines = ["Figure 9(a) — total throughput normalized to 1 instance "
             "(2MB map)", f"{'k':>3}  {'BigMap avg':>11}  "
             f"{'AFL avg':>11}  {'1:1':>5}"]
    norm: Dict[str, Dict[int, float]] = {}
    for fuzzer in ("bigmap", "afl"):
        norm[fuzzer] = {}
        for k in INSTANCE_COUNTS:
            ratios = [bench[fuzzer][k] / bench[fuzzer][1]
                      for bench in data.values() if bench[fuzzer][1] > 0]
            norm[fuzzer][k] = arithmetic_mean(ratios)
    for k in INSTANCE_COUNTS:
        lines.append(f"{k:>3}  {norm['bigmap'][k]:>11.2f}  "
                     f"{norm['afl'][k]:>11.2f}  {float(k):>5.1f}")
    report = "\n".join(lines)

    # (b) BigMap speedup over AFL at equal instance counts.
    rows = []
    for name, bench in data.items():
        rows.append([name] + [f"{bench['bigmap'][k] / bench['afl'][k]:.1f}"
                              for k in SPEEDUP_COUNTS])
    report += "\n\n" + render_table(
        ["Benchmark"] + [f"k={k}" for k in SPEEDUP_COUNTS], rows,
        title="Figure 9(b) — BigMap speedup over AFL (2MB map)")
    avgs = {k: arithmetic_mean([bench["bigmap"][k] / bench["afl"][k]
                                for bench in data.values()])
            for k in SPEEDUP_COUNTS}
    report += ("\n\nAverage speedups: " +
               ", ".join(f"k={k}: {avgs[k]:.1f}x" for k in SPEEDUP_COUNTS)
               + "   (paper: k=4: 4.9x, k=8: 9.2x, k=12: 13.8x)")
    afl_peak = max(range(1, 13), key=lambda k: norm["afl"][k])
    report += (f"\nAFL total throughput peaks at k={afl_peak} "
               "(paper: negative slope above 4 instances).")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
