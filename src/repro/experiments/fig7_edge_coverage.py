"""Figure 7: edge coverage vs map size.

Campaigns under a fixed virtual budget, coverage measured by the
*bias-free independent evaluation* (re-running each final corpus with
collision-free edge accounting, §V-A3). The paper's findings:

* BigMap plateaus everywhere within the budget;
* AFL matches it on small benchmarks but falls short on
  large-discoverable-edge benchmarks at 2 MB/8 MB because its
  throughput collapses;
* edge coverage is comparatively insensitive to collisions (the 64 kB
  runs do about as well as the rest where throughput allows).
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.reporting import render_table
from ..analysis.throughput import arithmetic_mean
from .common import (MAP_SIZE_LABELS, MAP_SIZES, BenchmarkCache, Profile,
                     discovery_campaign, get_profile)

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig7"

#: A readability subset, like the paper's ("not all benchmarks shown"):
#: two small, one medium, two large.
FIG7_BENCHMARKS = ("libpng", "proj4", "sqlite3", "gvn", "instcombine")


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks=None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """True-edge coverage per benchmark/fuzzer/size (replica-averaged)."""
    cache = cache or BenchmarkCache()
    names = benchmarks or FIG7_BENCHMARKS
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        built = cache.get(name, profile.scale, profile.seed_scale)
        out[name] = {"afl": {}, "bigmap": {}}
        for fuzzer in ("afl", "bigmap"):
            for size in MAP_SIZES:
                values = []
                for replica in range(profile.replicas):
                    result = discovery_campaign(
                        name, fuzzer, size, built, profile,
                        rng_seed=replica, compute_true_coverage=True)
                    values.append(float(result.true_edge_coverage))
                out[name][fuzzer][MAP_SIZE_LABELS[size]] = \
                    arithmetic_mean(values)
    return out


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    labels = list(MAP_SIZE_LABELS.values())
    rows = []
    for name, fuzzers in data.items():
        for fuzzer in ("afl", "bigmap"):
            rows.append([f"{name} ({fuzzer})"] +
                        [f"{fuzzers[fuzzer][lbl]:,.0f}"
                         for lbl in labels])
    report = render_table(
        ["Benchmark (fuzzer)"] + labels, rows,
        title="Figure 7 — true edge coverage vs map size "
              "(bias-free re-evaluation)")
    # Shape check: AFL's large-map deficit on big benchmarks.
    deficits = []
    for name, fuzzers in data.items():
        big_8m = fuzzers["bigmap"]["8M"]
        afl_8m = fuzzers["afl"]["8M"]
        if big_8m > 0:
            deficits.append((name, 100.0 * (1 - afl_8m / big_8m)))
    report += "\n\nAFL coverage deficit at 8M vs BigMap:"
    for name, deficit in deficits:
        report += f"\n  {name:<14} {deficit:6.1f}%"
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
