"""Figure 3: runtime composition of vanilla AFL with growing maps.

For six benchmarks (libpng, sqlite3, gvn, bloaty, openssl, php) and
three map sizes (64 kB, 2 MB, 8 MB), reports how the time to generate
one million test cases splits across Execution / Map Classify / Map
Compare / Map Reset / Map Hash / Others. The paper's observation: the
map operations are negligible at 64 kB and dominate at 8 MB.

Vanilla-AFL setting: classify and compare are *separate* passes here
(the merged §IV-E optimization is what the evaluation applies later)
and resets are ordinary stores.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.reporting import render_table
from ..target.benchmarks import FIG3_BENCHMARK_NAMES
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig3"

#: Figure 3's map sizes.
FIG3_MAP_SIZES = (1 << 16, 1 << 21, 1 << 23)
_SIZE_LABELS = {1 << 16: "64k", 1 << 21: "2M", 1 << 23: "8M"}

#: One million generated test cases, as in the figure's caption.
N_TESTCASES = 1_000_000

_CATEGORIES = ("execution", "classify", "compare", "reset", "hash",
               "others")


def compute(profile: Profile,
            cache: BenchmarkCache = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Hours per category for 1M test cases.

    Returns ``{benchmark: {size_label: {category: hours}}}``.
    """
    from ..fuzzer import Campaign, CampaignConfig
    cache = cache or BenchmarkCache()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in FIG3_BENCHMARK_NAMES:
        built = cache.get(name, profile.scale, profile.seed_scale)
        out[name] = {}
        for size in FIG3_MAP_SIZES:
            config = CampaignConfig(
                benchmark=name, fuzzer="afl", map_size=size,
                scale=profile.scale, seed_scale=profile.seed_scale,
                virtual_seconds=1e9,
                max_real_execs=profile.throughput_execs,
                merged_classify_compare=False,
                non_temporal_reset=False)
            result = Campaign(config, built=built).run()
            per_exec = {cat: result.op_cycles[cat] / max(result.execs, 1)
                        for cat in _CATEGORIES}
            frequency = config.machine.frequency_hz
            out[name][_SIZE_LABELS[size]] = {
                cat: per_exec[cat] * N_TESTCASES / frequency / 3600.0
                for cat in _CATEGORIES}
    return out


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    headers = ["Benchmark/size"] + [c.capitalize() for c in _CATEGORIES] \
        + ["Total (h)"]
    rows: List[list] = []
    for name, sizes in data.items():
        for size_label, cats in sizes.items():
            total = sum(cats.values())
            rows.append([f"{name} {size_label}"] +
                        [f"{cats[c]:.3f}" for c in _CATEGORIES] +
                        [f"{total:.3f}"])
    report = render_table(
        headers, rows,
        title=f"Figure 3 — runtime composition (hours per {N_TESTCASES:,}"
              " test cases), vanilla AFL")
    # Shape check the paper makes: map-op share at 64k vs 8M.
    shares = []
    for name, sizes in data.items():
        for label in ("64k", "8M"):
            cats = sizes[label]
            total = sum(cats.values())
            map_ops = total - cats["execution"] - cats["others"]
            shares.append((name, label,
                           100.0 * map_ops / total if total else 0.0))
    small = [s for _, l, s in shares if l == "64k"]
    big = [s for _, l, s in shares if l == "8M"]
    report += (f"\n\nMap-operation share of runtime: 64k avg "
               f"{sum(small) / len(small):.1f}% (paper: negligible), "
               f"8M avg {sum(big) / len(big):.1f}% (paper: dominant).")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
