"""Experiment harnesses: one module per table/figure of the paper.

See DESIGN.md §3 for the experiment-to-module index and
EXPERIMENTS.md for paper-vs-measured results. The CLI entry point is
:mod:`repro.experiments.runner` (installed as ``repro-experiments``).
"""

from .common import (MAP_SIZE_LABELS, MAP_SIZES, PAPER_FIG6_AVG_SPEEDUPS,
                     PROFILES, BenchmarkCache, Profile, get_profile)

__all__ = [
    "MAP_SIZE_LABELS", "MAP_SIZES", "PAPER_FIG6_AVG_SPEEDUPS", "PROFILES",
    "BenchmarkCache", "Profile", "get_profile",
]
