"""Extension experiment: a statistically-grounded fleet comparison.

The paper's evaluation compares fuzzers on single runs; Klees et al.
(*Evaluating Fuzz Testing*, CCS'18) showed that single-run comparisons
of randomized fuzzers are noise. This harness runs the comparison the
way the fleet orchestrator intends it to be run: a (fuzzer × benchmark)
grid of seed-paired trial replicas, dispatched through
:class:`repro.fleet.FleetDispatcher`, with one deterministic injected
worker kill to exercise the checkpoint-retry path, and a report that
carries Mann-Whitney p-values, Vargha–Delaney Â₁₂ effect sizes and
seeded bootstrap CIs instead of bare point estimates.

Uses the in-process backend, so the whole experiment — including the
injected fault and its retry — reproduces bit-identically.
"""

from __future__ import annotations

from typing import Dict

from ..fleet import (FleetDispatcher, FleetSpec, ResultsStore,
                     TrialFault, render_report)
from ..fleet.spec import KILL
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fleet"

BENCHMARKS = ("zlib", "libpng")
FUZZERS = ("afl", "bigmap")
MAP_SIZE = 1 << 16
#: Trial that loses its worker to the injected kill (retried from its
#: checkpoint; the report must still carry every trial).
FAULTED_TRIAL = 1


def _spec(profile: Profile, n_trials: int) -> FleetSpec:
    return FleetSpec(
        fuzzers=FUZZERS, benchmarks=BENCHMARKS,
        map_sizes=(MAP_SIZE,), n_trials=n_trials,
        scale=profile.scale, seed_scale=profile.seed_scale,
        virtual_seconds=profile.campaign_virtual_seconds,
        max_real_execs=profile.campaign_max_execs,
        faults={FAULTED_TRIAL: TrialFault(kind=KILL, at_segment=1)})


def compute(profile: Profile, cache: BenchmarkCache = None) -> Dict:
    # Replica count: enough trials for the rank statistics to mean
    # something, scaled down with the profile.
    n_trials = max(5, profile.replicas * 5)
    if profile.name == "quick":
        n_trials = 3
    spec = _spec(profile, n_trials)
    store = ResultsStore()
    summary = FleetDispatcher(spec, store=store, measure=False).run()
    return {"spec": spec, "store": store, "summary": summary}


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    summary = data["summary"]
    report = render_report(data["store"], data["spec"])
    header = (f"Extension — fleet comparison: "
              f"{summary.completed}/{summary.n_trials} trials, "
              f"{summary.retries} worker fault(s) retried from "
              f"checkpoints, {len(summary.lost)} lost\n\n")
    footer = ("\n\nReading: trials are seed-paired across fuzzers "
              "(replica k draws the same seed everywhere), the injected "
              "worker kill is recovered via checkpoint retry without "
              "changing any row, and every comparison carries a "
              "Mann-Whitney p-value, an A12 effect size and seeded "
              "bootstrap CIs per Klees et al.")
    data["store"].close()
    return header + report + footer


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
