"""Figure 2: hash collision rate vs bitmap size (Equation 1).

Pure math — no simulation. Regenerates the paper's grid: bitmap sizes
64 kB–32 MB against 5 k–1 M drawn keys, as collision-rate percentages.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis.collision import collision_rate
from ..analysis.reporting import render_table
from .common import Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig2"

#: The figure's axes.
BITMAP_SIZES: Tuple[int, ...] = tuple(1 << p for p in range(16, 26))
KEY_COUNTS: Tuple[int, ...] = (5_000, 10_000, 20_000, 50_000, 100_000,
                               200_000, 500_000, 1_000_000)

_SIZE_LABELS = ["64k", "128k", "256k", "512k", "1M", "2M", "4M", "8M",
                "16M", "32M"]


def compute() -> List[List[float]]:
    """Collision-rate grid (%), rows = key counts, cols = map sizes."""
    return [[100.0 * collision_rate(size, keys) for size in BITMAP_SIZES]
            for keys in KEY_COUNTS]


def run(profile: Profile = None) -> str:
    """Render the figure as a table (profile is irrelevant: exact math)."""
    grid = compute()
    rows = []
    for keys, row in zip(KEY_COUNTS, grid):
        rows.append([f"{keys:,} keys"] + [f"{v:.1f}" for v in row])
    report = render_table(
        ["No. of keys"] + _SIZE_LABELS, rows,
        title="Figure 2 — collision rate (%) vs bitmap size "
              "(Equation 1)")
    # The paper's spot checks: ~30% at 64 kB for real-world key counts
    # (1k-50k) and the need for >64 kB beyond 500k keys.
    report += (
        "\n\nPaper checkpoints: 50k keys @64k -> "
        f"{100 * collision_rate(1 << 16, 50_000):.1f}% (paper: ~30%); "
        f"500k keys @64k -> "
        f"{100 * collision_rate(1 << 16, 500_000):.1f}%.")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
