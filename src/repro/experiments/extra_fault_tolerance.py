"""Extension experiment: coverage/crash retention under injected faults.

The paper's §V-D parallel evaluation assumes every instance survives to
the deadline; production fleets do not (OOM kills, hung targets,
corrupted sync directories — the failure regime Klees et al.'s
long-trial methodology makes unavoidable). This harness measures how
much of a fault-free session's discovery a supervised session retains
when instances fail mid-run:

* a 4-instance BigMap session on one benchmark is the baseline;
* fault plans at increasing rates (expected events per instance,
  seeded → fully reproducible) inject ``crash``, ``stall``, ``slow``
  and ``corrupt-sync`` events;
* each rate runs under two restart policies — *none* (failed instances
  stay down, the pre-supervision behavior) and *backoff* (checkpoint
  restore with exponential backoff).

Reported per cell: coverage retention (discovered locations vs. the
fault-free run), crash retention, total restarts and lost instances.
The headline: with supervision, moderate fault rates should retain the
large majority of fault-free coverage, while without restarts every
faulted instance's remaining budget is forfeited.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.reporting import render_table
from ..faults import FaultPlan, RestartPolicy
from ..fuzzer import CampaignConfig, ParallelSession
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fault-tolerance"

BENCHMARK = "libpng"
MAP_SIZE = 1 << 21
N_INSTANCES = 4
FAULT_RATES: Sequence[float] = (0.5, 1.0, 2.0)
PLAN_SEED = 0xFA117


def _policies(sync_interval: float) -> Dict[str, RestartPolicy]:
    return {
        # max_restarts=0: the supervisor never brings an instance back.
        "none": RestartPolicy(max_restarts=0),
        "backoff": RestartPolicy(max_restarts=5,
                                 backoff_base=sync_interval / 4.0,
                                 backoff_factor=2.0,
                                 backoff_cap=4.0 * sync_interval),
    }


def compute(profile: Profile, cache: BenchmarkCache = None,
            fault_rates: Sequence[float] = FAULT_RATES) -> Dict:
    cache = cache or BenchmarkCache()
    built = cache.get(BENCHMARK, profile.scale, profile.seed_scale)
    config = CampaignConfig(
        benchmark=BENCHMARK, fuzzer="bigmap", map_size=MAP_SIZE,
        scale=profile.scale, seed_scale=profile.seed_scale,
        virtual_seconds=profile.campaign_virtual_seconds,
        max_real_execs=max(profile.campaign_max_execs // N_INSTANCES,
                           500))

    # Small profiles usually exhaust the exec cap well before the
    # nominal virtual budget, so a plan drawn over the nominal horizon
    # would never fire. Probe the real session span first and schedule
    # faults (and sync slices) inside it.
    probe = ParallelSession(config, N_INSTANCES, built=built).run()
    span = min(r.virtual_seconds for r in probe.per_instance)
    horizon = span * 0.85
    sync_interval = max(span / 10.0, 1e-6)

    baseline = ParallelSession(config, N_INSTANCES, built=built,
                               sync_interval=sync_interval).run()
    out: Dict = {
        "baseline": {
            "discovered": baseline.discovered_locations,
            "crashes": baseline.unique_crashes,
            "execs": baseline.total_execs,
        },
        "cells": [],
    }
    for rate in fault_rates:
        plan = FaultPlan.generate(seed=PLAN_SEED, n_instances=N_INSTANCES,
                                  horizon=horizon, rate=rate,
                                  mean_duration=horizon / 10.0)
        for policy_name, policy in _policies(sync_interval).items():
            summary = ParallelSession(
                config, N_INSTANCES, built=built,
                sync_interval=sync_interval, fault_plan=plan,
                restart_policy=policy).run()
            discovered = summary.discovered_locations
            crashes = summary.unique_crashes
            out["cells"].append({
                "rate": rate,
                "policy": policy_name,
                "faults": summary.total_faults,
                "restarts": summary.total_restarts,
                "lost": len(summary.lost_instances),
                "quarantined": summary.quarantined_imports,
                "discovered": discovered,
                "crashes": crashes,
                "coverage_retention":
                    discovered / max(baseline.discovered_locations, 1),
                "crash_retention":
                    crashes / max(baseline.unique_crashes, 1)
                    if baseline.unique_crashes else 1.0,
            })
    return out


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    base = data["baseline"]
    rows = []
    for cell in data["cells"]:
        rows.append([
            f"{cell['rate']:.1f}", cell["policy"], cell["faults"],
            cell["restarts"], cell["lost"],
            f"{100 * cell['coverage_retention']:.0f}%",
            f"{100 * cell['crash_retention']:.0f}%"])
    report = render_table(
        ["Rate", "Policy", "Faults", "Restarts", "Lost",
         "Coverage kept", "Crashes kept"],
        rows,
        title=f"Extension — fault tolerance, {N_INSTANCES}x bigmap on "
              f"{BENCHMARK} (baseline: {base['discovered']} locations, "
              f"{base['crashes']} crashes)")
    report += ("\n\nReading: 'none' forfeits each faulted instance's "
               "remaining budget; 'backoff' resumes it from its last "
               "checkpoint, so retention should stay near 100% until "
               "the fault rate swamps the restart budget. Plans are "
               "seeded — rerunning reproduces these numbers exactly.")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
