"""Figure 10: unique crashes with parallel fuzzing (2 MB map).

Real multi-instance sessions (corpus sync + contention) on the LLVM
benchmarks at 1/4/8/12 instances. The paper: BigMap finds 20% / 36% /
49% more unique crashes than AFL at 4 / 8 / 12 instances, because AFL's
per-instance throughput collapses under contention while BigMap's
smaller effective footprint keeps scaling.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.reporting import render_table
from ..analysis.throughput import arithmetic_mean
from ..fuzzer import CampaignConfig, ParallelSession
from ..target.benchmarks import FIG8_BENCHMARK_NAMES
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig10"

FIG10_MAP_SIZE = 1 << 21
INSTANCE_COUNTS: Sequence[int] = (1, 4, 8, 12)


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks=None,
            instance_counts: Sequence[int] = INSTANCE_COUNTS
            ) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Unique crashes per benchmark/fuzzer/instance count."""
    cache = cache or BenchmarkCache()
    names = benchmarks or FIG8_BENCHMARK_NAMES
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name in names:
        built = cache.get(name, profile.scale, profile.seed_scale)
        out[name] = {"afl": {}, "bigmap": {}}
        for fuzzer in ("afl", "bigmap"):
            for k in instance_counts:
                counts = []
                for replica in range(profile.replicas):
                    config = CampaignConfig(
                        benchmark=name, fuzzer=fuzzer,
                        map_size=FIG10_MAP_SIZE, scale=profile.scale,
                        seed_scale=profile.seed_scale,
                        virtual_seconds=profile.campaign_virtual_seconds,
                        max_real_execs=max(
                            profile.campaign_max_execs // max(k, 1), 500),
                        rng_seed=replica)
                    summary = ParallelSession(config, k,
                                              built=built).run()
                    counts.append(float(summary.unique_crashes))
                out[name][fuzzer][k] = arithmetic_mean(counts)
    return out


def run(profile: Profile, cache: BenchmarkCache = None,
        instance_counts: Sequence[int] = INSTANCE_COUNTS) -> str:
    data = compute(profile, cache, instance_counts=instance_counts)
    rows = []
    for name, fuzzers in data.items():
        for fuzzer in ("afl", "bigmap"):
            rows.append([f"{name} ({fuzzer})"] +
                        [f"{fuzzers[fuzzer][k]:.1f}"
                         for k in instance_counts])
    report = render_table(
        ["Benchmark (fuzzer)"] + [f"k={k}" for k in instance_counts],
        rows,
        title="Figure 10 — unique crashes vs instance count (2MB map)")
    gains = {}
    for k in instance_counts:
        ratio = []
        for fuzzers in data.values():
            if fuzzers["afl"][k] > 0:
                ratio.append(fuzzers["bigmap"][k] / fuzzers["afl"][k])
        gains[k] = 100.0 * (arithmetic_mean(ratio) - 1.0) if ratio else 0.0
    report += ("\n\nBigMap crash advantage: " +
               ", ".join(f"k={k}: {gains[k]:+.0f}%"
                         for k in instance_counts if k > 1) +
               "   (paper: k=4: +20%, k=8: +36%, k=12: +49%)")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
