#!/usr/bin/env python3
"""Parallel fuzzing scalability (the paper's §V-D scenario).

Runs master–secondary sessions with a 2 MB map at increasing instance
counts and shows how AFL's aggregate throughput saturates (the shared
LLC and memory bus choke on full-map sweeps) while BigMap keeps
scaling. Also prints the pure contention-model curve for all 12 cores.

Run:
    python examples/parallel_fuzzing.py
"""

from repro.fuzzer import Campaign, CampaignConfig, ParallelSession
from repro.memsim import InstanceLoad, solve_parallel
from repro.target import get_benchmark

BENCHMARK = "sqlite3"
MAP_SIZE = 1 << 21
SCALE = 0.15


def main() -> None:
    built = get_benchmark(BENCHMARK).build(scale=SCALE, seed_scale=0.15)
    print(f"Target: {BENCHMARK} (scaled), 2 MB map\n")

    # Real interleaved sessions with corpus sync, small instance counts.
    print("Real parallel sessions (virtual 6 s each, corpus sync on):")
    print(f"{'k':>3}  {'fuzzer':<8}{'total execs':>12}"
          f"{'execs/s':>10}{'crashes':>9}{'slowdown':>10}")
    for k in (1, 2, 4):
        for fuzzer in ("afl", "bigmap"):
            config = CampaignConfig(
                benchmark=BENCHMARK, fuzzer=fuzzer, map_size=MAP_SIZE,
                scale=SCALE, seed_scale=0.15, virtual_seconds=6.0,
                max_real_execs=4_000, rng_seed=3)
            summary = ParallelSession(config, k, built=built).run()
            print(f"{k:>3}  {fuzzer:<8}{summary.total_execs:>12,}"
                  f"{summary.total_throughput:>10,.0f}"
                  f"{summary.unique_crashes:>9}"
                  f"{summary.mean_slowdown:>10.2f}")

    # Contention-model curve across all 12 cores (cheap).
    print("\nContention model, 1-12 instances (normalized totals):")
    loads = {}
    for fuzzer in ("afl", "bigmap"):
        campaign = Campaign(CampaignConfig(
            benchmark=BENCHMARK, fuzzer=fuzzer, map_size=MAP_SIZE,
            scale=SCALE, seed_scale=0.15, virtual_seconds=1e9,
            max_real_execs=800, rng_seed=3), built=built)
        result = campaign.run()
        loads[fuzzer] = InstanceLoad(campaign.model, result.mean_shape)
    print(f"{'k':>3}  {'AFL total':>12}  {'BigMap total':>13}"
          f"  {'AFL norm':>9}  {'BigMap norm':>12}")
    base = {f: solve_parallel([loads[f]]).total_rate
            for f in ("afl", "bigmap")}
    for k in range(1, 13):
        totals = {f: solve_parallel([loads[f]] * k).total_rate
                  for f in ("afl", "bigmap")}
        print(f"{k:>3}  {totals['afl']:>12,.0f}  "
              f"{totals['bigmap']:>13,.0f}  "
              f"{totals['afl'] / base['afl']:>9.2f}  "
              f"{totals['bigmap'] / base['bigmap']:>12.2f}")
    print("\nPaper: AFL's total throughput has a negative slope above 4 "
          "instances; BigMap reaches ~9.2x AFL at 8 instances.")


if __name__ == "__main__":
    main()
