#!/usr/bin/env python3
"""Bring your own target: build a custom program and metric pipeline.

Shows the lower-level public API the campaign loop is made of:

1. describe a synthetic target with :class:`ProgramSpec` (or adapt the
   model to your own system-under-test);
2. pick an instrumentation (here: context-sensitive edge coverage);
3. drive the coverage pipeline by hand — executor, BigMap update,
   classify+compare against a virgin map — and inspect what the
   structure does underneath.

Run:
    python examples/custom_target.py
"""

import numpy as np

from repro.core import BigMapCoverage, VirginMap
from repro.instrumentation import ContextSensitiveInstrumentation
from repro.target import (Executor, ProgramSpec, generate_program,
                          generate_seed_corpus)

MAP_SIZE = 1 << 20


def main() -> None:
    # A mid-size target with a couple of magic-gated regions and a few
    # crash sites.
    spec = ProgramSpec(
        name="my-parser",
        n_core_edges=6_000,
        input_len=384,
        seed=2024,
        magic_subtree_edges=1_500,
        magic_subtree_count=6,
        n_crash_sites=12,
    )
    program = generate_program(spec)
    seeds = generate_seed_corpus(program, 20, seed=5)
    executor = Executor(program)
    metric = ContextSensitiveInstrumentation(program, MAP_SIZE, seed=9)

    coverage = BigMapCoverage(MAP_SIZE)
    virgin = VirginMap(MAP_SIZE)

    print(f"Program: {program.n_edges:,} edges "
          f"({program.n_crash_sites} crash sites), metric "
          f"'{metric.name}' with up to "
          f"{metric.distinct_keys_possible():,} distinct keys\n")

    interesting = 0
    crashes = 0
    rng = np.random.default_rng(0)
    corpus = list(seeds)
    for round_no in range(400):
        # Trivial mutation loop — the repro.fuzzer package does this
        # properly; here we stay on the low-level API.
        base = corpus[int(rng.integers(0, len(corpus)))]
        data = bytearray(base)
        for _ in range(8):
            data[int(rng.integers(0, len(data)))] = int(
                rng.integers(0, 256))
        data = bytes(data)

        result = executor.execute(data)
        keys, counts = metric.keys_for(
            result, np.frombuffer(data, dtype=np.uint8))
        coverage.reset()
        coverage.update(keys, counts)
        outcome = coverage.classify_and_compare(virgin)
        if result.crash is not None:
            crashes += 1
        elif outcome.interesting:
            interesting += 1
            corpus.append(data)

    print(f"400 executions: {interesting} interesting, {crashes} "
          f"crashing, corpus grew to {len(corpus)}")
    print(f"BigMap used_key: {coverage.used_key:,} of {MAP_SIZE:,} "
          f"slots — sweeps touch only the condensed prefix")
    print(f"Global coverage: {virgin.count_discovered():,} locations")

    # The two-level structure in action: a key maps through the index
    # into the condensed bitmap.
    some_key = int(keys[0])
    slot = coverage.slot_for_key(some_key)
    print(f"\nExample mapping: key {some_key} -> condensed slot {slot} "
          f"(count {coverage.count_for_key(some_key)})")
    coverage.check_invariants()
    print("BigMap structural invariants hold.")


if __name__ == "__main__":
    main()
