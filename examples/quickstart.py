#!/usr/bin/env python3
"""Quickstart: fuzz one benchmark with AFL's map and with BigMap.

Runs two short campaigns on the libpng benchmark with a 2 MB coverage
map — one with AFL's flat bitmap, one with BigMap's two-level bitmap —
and prints the throughput, coverage and corpus outcomes side by side.

Run:
    python examples/quickstart.py
"""

from repro.fuzzer import CampaignConfig, run_campaign
from repro.target import get_benchmark

MAP_SIZE = 1 << 21  # 2 MB: big enough that AFL's full-map sweeps hurt


def main() -> None:
    # Build the benchmark once (synthetic program + seed corpus) and
    # share it between both campaigns so they fuzz the same target.
    built = get_benchmark("libpng").build(scale=0.5, seed_scale=1.0)
    print(f"Target: {built.config.name} — "
          f"{built.program.n_edges:,} instrumented edges, "
          f"{len(built.seeds)} seed(s)\n")

    results = {}
    for fuzzer in ("afl", "bigmap"):
        config = CampaignConfig(
            benchmark="libpng",
            fuzzer=fuzzer,
            map_size=MAP_SIZE,
            virtual_seconds=10.0,   # modeled Xeon seconds, not wall time
            max_real_execs=15_000,
            rng_seed=42,
        )
        results[fuzzer] = run_campaign(config, built=built)

    print(f"{'':<24}{'AFL':>12}{'BigMap':>12}")
    rows = [
        ("throughput (execs/s)", "throughput", "{:,.0f}"),
        ("executions", "execs", "{:,}"),
        ("virtual seconds", "virtual_seconds", "{:.1f}"),
        ("map locations lit", "discovered_locations", "{:,}"),
        ("corpus size", "corpus_size", "{:,}"),
        ("unique crashes", "unique_crashes", "{:,}"),
    ]
    for label, attr, fmt in rows:
        afl = fmt.format(getattr(results["afl"], attr))
        big = fmt.format(getattr(results["bigmap"], attr))
        print(f"{label:<24}{afl:>12}{big:>12}")

    used = results["bigmap"].used_key
    ratio = results["bigmap"].throughput / results["afl"].throughput
    print(f"\nBigMap condensed {used:,} live locations out of a "
          f"{MAP_SIZE:,}-byte map, so its sweeps touch "
          f"{100 * used / MAP_SIZE:.2f}% of what AFL's touch.")
    print(f"BigMap throughput advantage at 2 MB: {ratio:.1f}x "
          f"(paper average: 4.5x).")


if __name__ == "__main__":
    main()
