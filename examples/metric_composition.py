#!/usr/bin/env python3
"""Aggressive coverage-metric composition (the paper's §V-C scenario).

Demonstrates why BigMap exists: stack the laf-intel transform with
N-gram (N=3) coverage on an LLVM harness and watch the key pressure
explode past what a 64 kB map can hold — then compare the 64 kB and
2 MB BigMap campaigns (both are BigMap: the point is the *map size*,
which only BigMap makes affordable).

Run:
    python examples/metric_composition.py
"""

from repro.analysis import collision_rate
from repro.fuzzer import CampaignConfig, run_campaign
from repro.instrumentation import NGramInstrumentation, apply_lafintel
from repro.target import get_benchmark

BENCHMARK = "gvn"
SCALE = 0.08  # keep the demo snappy; ratios are scale-free


def main() -> None:
    built = get_benchmark(BENCHMARK).build(scale=SCALE, seed_scale=0.5)
    base = built.program
    transformed = apply_lafintel(base)

    print(f"Target: {BENCHMARK} (scaled)\n")
    print(f"{'':<38}{'base':>12}{'with laf-intel':>16}")
    print(f"{'materialized edges':<38}{base.n_edges:>12,}"
          f"{transformed.n_edges:>16,}")
    print(f"{'static edges (binary-wide)':<38}{base.static_edges:>12,}"
          f"{transformed.static_edges:>16,}")
    print(f"{'discoverable by byte mutation':<38}"
          f"{int(base.practically_discoverable_mask().sum()):>12,}"
          f"{int(transformed.practically_discoverable_mask().sum()):>16,}")

    ngram = NGramInstrumentation(transformed, 1 << 21, n=3)
    pressure = ngram.distinct_keys_possible()
    print(f"\nN-gram (N=3) key pressure on the transformed target: "
          f"{pressure:,} possible keys")
    for size, label in ((1 << 16, "64 kB"), (1 << 21, "2 MB")):
        print(f"  expected collision rate on a {label} map: "
              f"{100 * collision_rate(size, pressure):.1f}%")

    print("\nRunning both compositions with BigMap...")
    outcomes = {}
    for size, label in ((1 << 16, "64kB"), (1 << 21, "2MB")):
        result = run_campaign(CampaignConfig(
            benchmark=BENCHMARK, fuzzer="bigmap", map_size=size,
            metric="ngram3", lafintel=True, scale=SCALE, seed_scale=0.5,
            virtual_seconds=8.0, max_real_execs=12_000, rng_seed=7),
            built=built)
        outcomes[label] = result
        print(f"  {label:>5}: {result.execs:,} execs, "
              f"{result.discovered_locations:,} keys discovered, "
              f"{result.unique_crashes} unique crashes")

    small, big = outcomes["64kB"], outcomes["2MB"]
    if small.unique_crashes:
        gain = 100.0 * (big.unique_crashes / small.unique_crashes - 1)
        print(f"\nCrash gain from collision mitigation: {gain:+.0f}% "
              f"(paper Table III average: +33%)")
    print("Note: at this demo scale the composed metric emits only a "
          "few thousand keys,\nso 64 kB collisions are mild; the "
          "paper's +33% needs the full ~600k-key pressure\n(run "
          "`repro-experiments table3 --profile full`).")


if __name__ == "__main__":
    main()
