"""Benches regenerating Table III (metric composition) and Figures 9/10
(parallel scalability and crashes)."""

import pytest

from repro.analysis.throughput import arithmetic_mean


def test_table3_lafintel_ngram_composition(benchmark, profile, cache):
    from repro.experiments.table3_composition import compute
    from repro.target import TABLE3_BENCHMARKS
    subset = [b for b in TABLE3_BENCHMARKS if b.name in ("licm", "gvn")]
    rows = benchmark.pedantic(compute, args=(profile, cache),
                              kwargs={"benchmarks": subset},
                              rounds=1, iterations=1)
    coll_64k = arithmetic_mean([r["collision_64kB"] for r in rows])
    coll_2m = arithmetic_mean([r["collision_2MB"] for r in rows])
    benchmark.extra_info["collision_64kB_pct"] = round(coll_64k, 1)
    benchmark.extra_info["collision_2MB_pct"] = round(coll_2m, 1)
    # The composed metric must pressure the small map far harder.
    assert coll_64k > coll_2m * 3


def test_fig9_scaling_curves(benchmark, profile, cache):
    from repro.experiments.fig9_scalability import compute
    data = benchmark.pedantic(compute, args=(profile, cache),
                              kwargs={"benchmarks": ["sqlite3"]},
                              rounds=1, iterations=1)
    rates = data["sqlite3"]
    speedup_8 = rates["bigmap"][8] / rates["afl"][8]
    benchmark.extra_info["bigmap_speedup_k8"] = round(speedup_8, 1)
    benchmark.extra_info["afl_norm_k12"] = round(
        rates["afl"][12] / rates["afl"][1], 2)
    benchmark.extra_info["bigmap_norm_k12"] = round(
        rates["bigmap"][12] / rates["bigmap"][1], 2)
    assert speedup_8 > rates["bigmap"][1] / rates["afl"][1], \
        "speedup must grow with instances (super-linear, Fig 9b)"


def test_fig10_parallel_crashes(benchmark, profile, cache):
    from repro.experiments.fig10_parallel_crashes import compute
    data = benchmark.pedantic(
        compute, args=(profile, cache),
        kwargs={"benchmarks": ["licm"], "instance_counts": (1, 2)},
        rounds=1, iterations=1)
    for fuzzer in ("afl", "bigmap"):
        for k, crashes in data["licm"][fuzzer].items():
            benchmark.extra_info[f"{fuzzer}_k{k}"] = crashes
    # More instances never lose crashes for BigMap (union of finds).
    assert data["licm"]["bigmap"][2] >= data["licm"]["bigmap"][1] * 0.8
