"""Cross-seed batching + shared-memory backend throughput (BENCH_6).

PR-6 lifts batching from one-seed-per-pass to a cross-seed scheduling
window (``batch_window``) and adds the shared-memory process-pool
backend (:class:`repro.fuzzer.mp.MPCampaign`). This bench runs the
BENCH_5 workload — zlib at the 64 kB spot-check map — through three
engines at the same ``batch_window=8``:

* the serial scalar engine (the BENCH_5 baseline configuration),
* the in-process cross-seed batched engine,
* the shared-memory backend with 2 workers,

records execs/sec for each in ``BENCH_6.json``, and asserts the batch
equivalence contract held (all engines bit-identical) with the batched
engine at least 3x over serial. A second record section measures the
fig6/fig7-style 8 MB-map point as host wall-clock *and* modeled
virtual throughput for both fuzzers.

Wall-clock on shared CI machines is noisy, so every engine is timed
``_ROUNDS`` times interleaved and the minimum is kept; the ratio of
minima is far more stable than any single-shot measurement.
"""

import json
import time
from pathlib import Path

from repro.fuzzer import Campaign, CampaignConfig
from repro.fuzzer.mp import MPCampaign
from repro.target import get_benchmark

#: The BENCH_5 measured workload, now with a cross-seed window. The
#: window is a semantic scheduling knob, so *every* engine measured
#: here runs W=8 — the comparison isolates pure execution strategy.
_WORKLOAD = dict(benchmark="zlib", fuzzer="bigmap", map_size=1 << 16,
                 scale=0.5, seed_scale=0.2, virtual_seconds=30.0,
                 max_real_execs=20_000, rng_seed=3)
_WINDOW = 8
_MP_WORKERS = 2

#: The fig6/fig7-style large-map point: same campaign at an 8 MB map,
#: both fuzzers, batched W=8. Fewer execs — the point is the map-size
#: scaling, not a long campaign.
_BIGMAP_POINT = dict(benchmark="zlib", map_size=1 << 23, scale=0.5,
                     seed_scale=0.2, virtual_seconds=30.0,
                     max_real_execs=8_000, rng_seed=3)

_ROUNDS = 3
_OUT = Path(__file__).resolve().parent.parent / "BENCH_6.json"


def _summary(campaign, result):
    return (result.execs, result.corpus, result.coverage_curve,
            result.op_cycles, result.unique_crashes, result.hangs)


def _run(built, factory):
    campaign = factory(built)
    # Host wall time is the point of this bench — the intentional
    # exception to the repro.core.walltime rule, as in conftest.
    start = time.perf_counter()  # statlint: disable=DET001 (bench times the host on purpose)
    result = campaign.run()
    elapsed = time.perf_counter() - start  # statlint: disable=DET001 (bench times the host on purpose)
    summary = _summary(campaign, result)
    if isinstance(campaign, MPCampaign):
        campaign.close()
    return result, summary, elapsed


def _engines():
    def serial(built):
        return Campaign(CampaignConfig(batch_execution=False,
                                       batch_window=_WINDOW,
                                       **_WORKLOAD), built=built)

    def batched(built):
        return Campaign(CampaignConfig(batch_execution=True,
                                       batch_window=_WINDOW,
                                       **_WORKLOAD), built=built)

    def mp(built):
        return MPCampaign(CampaignConfig(batch_execution=True,
                                         batch_window=_WINDOW,
                                         **_WORKLOAD), built=built,
                          workers=_MP_WORKERS)

    return {"serial": serial, "batched": batched, "mp": mp}


def _measure():
    built = get_benchmark(_WORKLOAD["benchmark"]).build(
        scale=_WORKLOAD["scale"], seed_scale=_WORKLOAD["seed_scale"])
    times = {name: [] for name in _engines()}
    summaries = {}
    execs = None
    for _ in range(_ROUNDS):
        for name, factory in _engines().items():
            result, summary, elapsed = _run(built, factory)
            times[name].append(elapsed)
            summaries[name] = summary
            execs = result.execs
    identical = (summaries["serial"] == summaries["batched"] ==
                 summaries["mp"])
    eps = {name: execs / min(ts) for name, ts in times.items()}
    return {
        "bench": "cross_seed_mp",
        "workload": {k: v for k, v in _WORKLOAD.items()},
        "window": _WINDOW,
        "backend": "mp",
        "workers": _MP_WORKERS,
        "rounds": _ROUNDS,
        "execs": execs,
        "serial_execs_per_sec": round(eps["serial"], 1),
        "batched_execs_per_sec": round(eps["batched"], 1),
        "mp_execs_per_sec": round(eps["mp"], 1),
        "speedup": round(eps["batched"] / eps["serial"], 3),
        "mp_speedup": round(eps["mp"] / eps["serial"], 3),
        "identical_results": identical,
    }


def _measure_8mb():
    """Host and modeled throughput at the 8 MB map, both fuzzers."""
    built = get_benchmark(_BIGMAP_POINT["benchmark"]).build(
        scale=_BIGMAP_POINT["scale"],
        seed_scale=_BIGMAP_POINT["seed_scale"])
    point = {}
    for fuzzer in ("afl", "bigmap"):
        config = CampaignConfig(fuzzer=fuzzer, batch_execution=True,
                                batch_window=_WINDOW,
                                **{k: v for k, v in
                                   _BIGMAP_POINT.items()
                                   if k not in ("scale", "seed_scale")},
                                scale=_BIGMAP_POINT["scale"],
                                seed_scale=_BIGMAP_POINT["seed_scale"])
        host_times, result = [], None
        for _ in range(_ROUNDS):
            campaign = Campaign(config, built=built)
            start = time.perf_counter()  # statlint: disable=DET001 (bench times the host on purpose)
            result = campaign.run()
            host_times.append(time.perf_counter() - start)  # statlint: disable=DET001 (bench times the host on purpose)
        point[fuzzer] = {
            "host_execs_per_sec": round(result.execs /
                                        min(host_times), 1),
            "virtual_execs_per_sec": round(result.execs /
                                           result.virtual_seconds, 1),
            "execs": result.execs,
        }
    return point


def test_cross_seed_and_mp_throughput(benchmark):
    record = benchmark.pedantic(_measure, rounds=1, iterations=1)
    record["wallclock_8mb"] = _measure_8mb()
    _OUT.write_text(json.dumps(record, indent=2) + "\n")
    for key in ("serial_execs_per_sec", "batched_execs_per_sec",
                "mp_execs_per_sec", "speedup", "mp_speedup"):
        benchmark.extra_info[key] = record[key]
    assert record["identical_results"], \
        "an execution backend diverged (batch equivalence contract)"
    assert record["speedup"] >= 3.0, record
