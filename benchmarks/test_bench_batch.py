"""Serial vs batched execution engine throughput (BENCH_5).

The batched engine (``CampaignConfig(batch_execution=True)``) is the
PR-5 perf baseline: one vectorized havoc + execute + coverage pass per
seed instead of one Python ``_pipeline`` call per mutation. This bench
runs the same campaign both ways on the fig2 spot-check map size
(64 kB) and records execs/sec for each in ``BENCH_5.json`` at the repo
root, asserting the batched engine is at least 2x faster and — the
batch equivalence contract — that both engines produced bit-identical
campaigns.

Wall-clock on shared CI machines is noisy, so each engine is timed
``_ROUNDS`` times interleaved and the minimum is kept; the ratio of
minima is far more stable than any single-shot measurement.
"""

import json
import time
from pathlib import Path

from repro.fuzzer import Campaign, CampaignConfig
from repro.target import get_benchmark

#: The measured workload: zlib at the paper's 64 kB bitmap spot check
#: (Figure 2's leftmost column), sized so a pair of runs stays in CI
#: smoke territory while still covering thousands of executions.
_WORKLOAD = dict(benchmark="zlib", fuzzer="bigmap", map_size=1 << 16,
                 scale=0.5, seed_scale=0.2, virtual_seconds=30.0,
                 max_real_execs=20_000, rng_seed=3)

_ROUNDS = 3
_OUT = Path(__file__).resolve().parent.parent / "BENCH_5.json"


def _run(built, batch):
    config = CampaignConfig(batch_execution=batch, **_WORKLOAD)
    campaign = Campaign(config, built=built)
    # Host wall time is the point of this bench — the intentional
    # exception to the repro.core.walltime rule, as in conftest.
    start = time.perf_counter()  # statlint: disable=DET001 (bench times the host on purpose)
    result = campaign.run()
    elapsed = time.perf_counter() - start  # statlint: disable=DET001 (bench times the host on purpose)
    return result, elapsed


def _measure():
    built = get_benchmark(_WORKLOAD["benchmark"]).build(
        scale=_WORKLOAD["scale"], seed_scale=_WORKLOAD["seed_scale"])
    serial_times, batched_times = [], []
    serial_result = batched_result = None
    for _ in range(_ROUNDS):
        serial_result, t = _run(built, batch=False)
        serial_times.append(t)
        batched_result, t = _run(built, batch=True)
        batched_times.append(t)
    identical = (
        serial_result.execs == batched_result.execs
        and serial_result.corpus == batched_result.corpus
        and serial_result.coverage_curve == batched_result.coverage_curve
        and serial_result.op_cycles == batched_result.op_cycles
        and serial_result.unique_crashes == batched_result.unique_crashes)
    execs = serial_result.execs
    serial_eps = execs / min(serial_times)
    batched_eps = execs / min(batched_times)
    return {
        "bench": "batch_engine",
        "workload": {k: v for k, v in _WORKLOAD.items()},
        "rounds": _ROUNDS,
        "execs": execs,
        "serial_execs_per_sec": round(serial_eps, 1),
        "batched_execs_per_sec": round(batched_eps, 1),
        "speedup": round(batched_eps / serial_eps, 3),
        "identical_results": identical,
    }


def test_batched_engine_throughput(benchmark):
    record = benchmark.pedantic(_measure, rounds=1, iterations=1)
    _OUT.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info["serial_execs_per_sec"] = \
        record["serial_execs_per_sec"]
    benchmark.extra_info["batched_execs_per_sec"] = \
        record["batched_execs_per_sec"]
    benchmark.extra_info["speedup"] = record["speedup"]
    assert record["identical_results"], \
        "batched engine diverged from serial (equivalence contract)"
    assert record["speedup"] >= 2.0, record
