"""Shared fixtures and profiles for the benchmark suite.

Two kinds of benchmarks live here:

* **host micro-benchmarks** (``test_bench_core_ops``, ``..._executor``)
  time the real numpy data structures on the host — AFL's full-map
  sweeps in literal (dense) mode genuinely cost ~128x more wall time at
  8 MB than at 64 kB, demonstrating the paper's point on any machine;
* **harness benchmarks** (``test_bench_fig*``, ``..._table*``) time the
  experiment pipelines at a micro profile and, more importantly, print
  the paper-shape metrics they produce (speedups, crash gains) via
  ``benchmark.extra_info``.

Run with: ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.experiments.common import BenchmarkCache, Profile

#: Micro profile used by harness benches: small enough for CI.
BENCH_PROFILE = Profile(
    name="bench", scale=0.04, seed_scale=0.02, throughput_execs=150,
    campaign_virtual_seconds=0.8, campaign_max_execs=1_200,
    composition_scale=0.02, replicas=1)


@pytest.fixture(scope="session")
def profile():
    return BENCH_PROFILE


@pytest.fixture(scope="session")
def cache():
    return BenchmarkCache()
