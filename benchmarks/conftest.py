"""Shared fixtures and profiles for the benchmark suite.

Two kinds of benchmarks live here:

* **host micro-benchmarks** (``test_bench_core_ops``, ``..._executor``)
  time the real numpy data structures on the host — AFL's full-map
  sweeps in literal (dense) mode genuinely cost ~128x more wall time at
  8 MB than at 64 kB, demonstrating the paper's point on any machine;
* **harness benchmarks** (``test_bench_fig*``, ``..._table*``) time the
  experiment pipelines at a micro profile and, more importantly, print
  the paper-shape metrics they produce (speedups, crash gains) via
  ``benchmark.extra_info``.

Run with: ``pytest benchmarks/ --benchmark-only``.
"""

import time

import pytest

from repro.experiments.common import BenchmarkCache, Profile

try:
    import pytest_benchmark  # noqa: F401
    _HAVE_PYTEST_BENCHMARK = True
except ImportError:  # pragma: no cover - exercised in minimal CI envs
    _HAVE_PYTEST_BENCHMARK = False


class _FallbackBenchmark:
    """Single-shot stand-in for pytest-benchmark's ``benchmark`` fixture.

    Lets the suite *run* (not just collect) in environments where only
    numpy and pytest are installed, e.g. the CI image. One timed call,
    no statistics — good enough for the harness benches, whose value is
    the paper-shape metrics they print via ``extra_info``.
    """

    def __init__(self):
        self.extra_info = {}
        self.elapsed = None

    def __call__(self, fn, *args, **kwargs):
        # Host micro-benchmarks measure host wall time by design; this
        # is the intentional exception to the repro.core.walltime rule.
        start = time.perf_counter()  # statlint: disable=DET001 (bench fixture times the host on purpose)
        result = fn(*args, **kwargs)
        self.elapsed = time.perf_counter() - start  # statlint: disable=DET001 (bench fixture times the host on purpose)
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                 iterations=1):
        """Single-shot mirror of pytest-benchmark's ``pedantic``."""
        return self(fn, *args, **(kwargs or {}))


if not _HAVE_PYTEST_BENCHMARK:
    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()

#: Micro profile used by harness benches: small enough for CI.
BENCH_PROFILE = Profile(
    name="bench", scale=0.04, seed_scale=0.02, throughput_execs=150,
    campaign_virtual_seconds=0.8, campaign_max_execs=1_200,
    composition_scale=0.02, replicas=1)


@pytest.fixture(scope="session")
def profile():
    return BENCH_PROFILE


@pytest.fixture(scope="session")
def cache():
    return BenchmarkCache()
