"""Benches for the extension experiments (CollAFL, dedup bias,
ensemble) and the trim / persistent-mode features."""

import numpy as np
import pytest

from repro.fuzzer import CampaignConfig, Campaign
from repro.target import get_benchmark


def test_collafl_combination(benchmark, profile, cache):
    from repro.experiments.extra_collafl import compute
    data = benchmark.pedantic(compute, args=(profile, cache), rounds=1,
                              iterations=1)
    benchmark.extra_info["combination_speedup"] = round(
        data["throughput_bigmap"] / data["throughput_afl"], 1)
    benchmark.extra_info["direct_collisions"] = \
        data["collafl_direct_collisions"]
    assert data["collafl_direct_collisions"] == 0


def test_dedup_bias(benchmark, profile, cache):
    from repro.experiments.extra_dedup_bias import compute
    rows = benchmark.pedantic(compute, args=(profile, cache),
                              kwargs={"benchmarks": ["licm"]},
                              rounds=1, iterations=1)
    assert len(rows) == 4


def test_ensemble_vs_stacked(benchmark, profile, cache):
    from repro.experiments.extra_ensemble import compute
    data = benchmark.pedantic(compute, args=(profile, cache), rounds=1,
                              iterations=1)
    benchmark.extra_info["stacked_crashes"] = data["stacked"]["crashes"]
    benchmark.extra_info["ensemble_crashes"] = \
        data["ensemble"]["crashes"]
    assert data["stacked"]["execs"] > 0


def test_trim_stage_cost(benchmark):
    """Wall cost of trimming a queue entry through the real pipeline."""
    built = get_benchmark("libpng").build(scale=0.15, seed_scale=1.0)
    campaign = Campaign(CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 16,
        scale=0.15, seed_scale=1.0, virtual_seconds=1e9,
        max_real_execs=10**9), built=built)
    campaign.start()
    from repro.fuzzer.trim import trim_input
    data = campaign.pool.seeds[0].data

    def trim_once():
        return trim_input(data, campaign._trace_hash,
                          max_executions=64)
    result = benchmark(trim_once)
    benchmark.extra_info["removed_bytes"] = result.removed_bytes


def test_persistent_vs_fork_model(benchmark):
    """Model-level throughput gap from persistent mode (paper §V-A1)."""
    built = get_benchmark("zlib").build(scale=1.0, seed_scale=0.1)

    def measure():
        out = {}
        for persistent in (True, False):
            campaign = Campaign(CampaignConfig(
                benchmark="zlib", fuzzer="bigmap", map_size=1 << 16,
                seed_scale=0.1, virtual_seconds=1e9, max_real_execs=300,
                persistent_mode=persistent), built=built)
            out[persistent] = campaign.run().throughput
        return out
    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["persistent_speedup"] = round(
        rates[True] / rates[False], 1)
    assert rates[True] > rates[False] * 2
