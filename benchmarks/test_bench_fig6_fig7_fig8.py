"""Benches regenerating Figure 6 (throughput), Figure 7 (coverage) and
Figure 8 (crashes vs map size)."""

import pytest

from repro.analysis.throughput import arithmetic_mean


def test_fig6_throughput_sweep(benchmark, profile, cache):
    from repro.experiments.fig6_throughput import (compute,
                                                   speedup_summary)
    data = benchmark.pedantic(
        compute, args=(profile, cache),
        kwargs={"benchmarks": ["libpng", "sqlite3", "licm"]},
        rounds=1, iterations=1)
    speeds = speedup_summary(data)
    for label, value in speeds.items():
        benchmark.extra_info[f"speedup_{label}"] = round(value, 2)
    ordered = [speeds[lbl] for lbl in ("64k", "256k", "2M", "8M")]
    assert ordered == sorted(ordered), \
        "BigMap's advantage must grow with map size"
    assert ordered[-1] > 10


def test_fig7_edge_coverage(benchmark, profile, cache):
    from repro.experiments.fig7_edge_coverage import compute
    data = benchmark.pedantic(
        compute, args=(profile, cache),
        kwargs={"benchmarks": ["libpng", "sqlite3"]},
        rounds=1, iterations=1)
    # AFL at 8M must not beat BigMap at 8M (throughput collapse).
    for name, fuzzers in data.items():
        benchmark.extra_info[f"{name}_afl_8M"] = fuzzers["afl"]["8M"]
        benchmark.extra_info[f"{name}_bigmap_8M"] = \
            fuzzers["bigmap"]["8M"]
        assert fuzzers["afl"]["8M"] <= fuzzers["bigmap"]["8M"] * 1.1


def test_fig8_crashes_vs_map_size(benchmark, profile, cache):
    from repro.experiments.fig8_crashes import compute
    data = benchmark.pedantic(
        compute, args=(profile, cache),
        kwargs={"benchmarks": ["licm", "gvn"]},
        rounds=1, iterations=1)
    labels = ("64k", "256k", "2M", "8M")
    afl_avg = {lbl: arithmetic_mean([f["afl"][lbl]
                                     for f in data.values()])
               for lbl in labels}
    big_avg = {lbl: arithmetic_mean([f["bigmap"][lbl]
                                     for f in data.values()])
               for lbl in labels}
    for lbl in labels:
        benchmark.extra_info[f"afl_{lbl}"] = round(afl_avg[lbl], 1)
        benchmark.extra_info[f"bigmap_{lbl}"] = round(big_avg[lbl], 1)
    # AFL's big maps must not dominate its small maps (throughput
    # collapse costs crashes); BigMap at 8M must be at least as good
    # as AFL at 8M.
    assert afl_avg["8M"] <= max(afl_avg["64k"], afl_avg["256k"]) + 0.5
    assert big_avg["8M"] >= afl_avg["8M"]
