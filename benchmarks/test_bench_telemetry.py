"""Telemetry overhead benches: the disabled path must be free.

Telemetry is opt-in; the contract that lets it ride inside the hot loop
is that a campaign built *without* a recorder pays (near) nothing for
the instrumentation points — the null tracer hands every call site one
shared no-op span. These benches time the same short campaign with
telemetry off and on, assert the off path stays within a small guard of
the historical plain-loop cost, and report the enabled-path cost as
``extra_info`` for trend-watching.

The guard compares medians of interleaved repeats (not single shots) so
host noise doesn't flake CI; results between modes are also checked
identical, which is the other half of the "observability changes
nothing" contract.
"""

import pytest

from repro.core.walltime import Stopwatch
from repro.fuzzer import Campaign, CampaignConfig
from repro.target import get_benchmark
from repro.telemetry.recorder import TelemetryRecorder

#: Tolerated regression of the telemetry-disabled hot path relative to
#: the telemetry-enabled one (the enabled path does strictly more work,
#: so disabled must not be slower than enabled times this slack).
DISABLED_OVERHEAD_GUARD = 1.02

REPEATS = 5


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def config():
    return CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 18,
        scale=0.25, seed_scale=1.0, virtual_seconds=2.0,
        max_real_execs=8_000, rng_seed=11)


def timed_run(built, telemetry):
    watch = Stopwatch()
    result = Campaign(config(), built=built, telemetry=telemetry).run()
    return watch.elapsed(), result


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class TestDisabledOverhead:
    def test_disabled_within_guard_of_enabled(self, built, benchmark):
        """Interleaved A/B: the disabled path must not regress past the
        guard relative to the enabled path. Enabled does strictly more
        work, so this bounds the *absolute* cost of the disabled
        instrumentation points at ~the guard margin."""
        off_times, on_times = [], []
        results = set()
        for _ in range(REPEATS):
            elapsed, result = timed_run(built, None)
            off_times.append(elapsed)
            results.add((result.execs, result.discovered_locations))
            elapsed, result = timed_run(built, TelemetryRecorder(0))
            on_times.append(elapsed)
            results.add((result.execs, result.discovered_locations))
        off, on = median(off_times), median(on_times)
        benchmark.extra_info["disabled_median_s"] = round(off, 4)
        benchmark.extra_info["enabled_median_s"] = round(on, 4)
        benchmark.extra_info["enabled_over_disabled"] = \
            round(on / off, 3) if off else float("inf")
        benchmark(lambda: None)
        assert len(results) == 1, "telemetry changed campaign results"
        assert off <= on * DISABLED_OVERHEAD_GUARD, (
            f"telemetry-disabled run ({off:.4f}s) slower than "
            f"{DISABLED_OVERHEAD_GUARD}x the enabled run ({on:.4f}s); "
            f"the null-tracer path has grown a real cost")


class TestEnabledCost:
    def test_enabled_run_reports_profile(self, built, benchmark):
        recorder = TelemetryRecorder(0)
        _, result = timed_run(built, recorder)
        profile = recorder.tracer.profile()
        benchmark.extra_info["spans"] = {
            name: profile[name]["calls"] for name in sorted(profile)
            if not name.startswith("op.")}
        benchmark.extra_info["events"] = len(recorder.events)
        benchmark(lambda: None)
        assert profile["execute"]["calls"] == result.execs
