"""Ablation benches for the design choices DESIGN.md §4 calls out.

Each ablation isolates one §IV-E optimization (or BigMap design rule)
and reports both the host wall time of the real data structures and the
model-predicted cycle deltas.
"""

import numpy as np
import pytest

from repro.core import AflCoverage, BigMapCoverage, VirginMap
from repro.core.hashing import crc32_full, crc32_trimmed
from repro.memsim import (AFL, BIGMAP, BitmapCostModel, ExecShape,
                          MapCostConfig)

MAP_2M = 1 << 21
SHAPE = ExecShape(traversals=16_000, unique_locations=9_000,
                  used_bytes=30_000)


def _loaded_afl(map_size):
    cov = AflCoverage(map_size, sparse_host_ops=False)
    rng = np.random.default_rng(1)
    cov.update(rng.integers(0, map_size, size=9_000, dtype=np.int64),
               rng.integers(1, 20, size=9_000, dtype=np.int64))
    return cov


class TestMergedClassifyCompare:
    """Ablation 1: merging classify+compare halves the sweep cost."""

    def test_host_split_passes(self, benchmark):
        cov = _loaded_afl(MAP_2M)
        virgin = VirginMap(MAP_2M)

        def split():
            cov.classify()
            cov.compare(virgin)
        benchmark(split)

    def test_host_merged_pass(self, benchmark):
        cov = _loaded_afl(MAP_2M)
        virgin = VirginMap(MAP_2M)

        def merged():
            cov.classify_and_compare(virgin)
        benchmark(merged)

    def test_model_predicts_saving(self, benchmark):
        def predict():
            split = BitmapCostModel(MapCostConfig(
                AFL, MAP_2M, merged_classify_compare=False))
            merged = BitmapCostModel(MapCostConfig(
                AFL, MAP_2M, merged_classify_compare=True))
            s = split.exec_cycles(SHAPE)
            m = merged.exec_cycles(SHAPE)
            return (s.classify + s.compare) / (m.classify + m.compare)
        ratio = benchmark(predict)
        benchmark.extra_info["sweep_cost_ratio_split_over_merged"] = \
            round(ratio, 2)
        assert ratio > 1.3


class TestNonTemporalReset:
    """Ablation 2: NT reset helps only DRAM-bound (large-map) AFL."""

    def test_model_deltas(self, benchmark):
        def predict():
            out = {}
            for size, label in ((1 << 16, "64k"), (1 << 23, "8M")):
                nt = BitmapCostModel(MapCostConfig(
                    AFL, size, non_temporal_reset=True))
                normal = BitmapCostModel(MapCostConfig(
                    AFL, size, non_temporal_reset=False))
                out[label] = (normal.exec_cycles(SHAPE).reset /
                              nt.exec_cycles(SHAPE).reset)
            return out
        ratios = benchmark(predict)
        benchmark.extra_info.update(
            {f"reset_speedup_{k}": round(v, 2)
             for k, v in ratios.items()})
        assert ratios["8M"] > 1.2, "NT must win once DRAM-bound"
        assert ratios["64k"] < 1.0, "NT must lose while cache-resident"


class TestHugePages:
    """Ablation 3: huge pages remove DTLB pressure on big maps."""

    def test_model_deltas(self, benchmark):
        def predict():
            huge = BitmapCostModel(MapCostConfig(
                AFL, 1 << 23, huge_pages=True))
            small = BitmapCostModel(MapCostConfig(
                AFL, 1 << 23, huge_pages=False))
            return small.exec_cycles(SHAPE).total / \
                huge.exec_cycles(SHAPE).total
        ratio = benchmark(predict)
        benchmark.extra_info["total_speedup_from_huge_pages"] = \
            round(ratio, 3)
        assert ratio > 1.01


class TestHashTrimming:
    """Ablation 4: hash up-to-last-nonzero vs full map (§IV-D)."""

    def test_host_full_hash_8m(self, benchmark):
        data = np.zeros(1 << 23, dtype=np.uint8)
        data[:30_000] = 1
        benchmark(lambda: crc32_full(data))

    def test_host_trimmed_hash_8m(self, benchmark):
        data = np.zeros(1 << 23, dtype=np.uint8)
        data[:30_000] = 1
        result = benchmark(lambda: crc32_trimmed(data, 30_000))
        assert result == crc32_full(data[:30_000])


class TestIndexResetRule:
    """Ablation 5: never resetting the index is what keeps slots
    stable; resetting it would also cost a full-map sweep per exec."""

    def test_host_used_region_reset(self, benchmark):
        cov = BigMapCoverage(1 << 23)
        rng = np.random.default_rng(2)
        cov.update(rng.integers(0, 1 << 23, size=9_000, dtype=np.int64),
                   np.ones(9_000, dtype=np.int64))
        benchmark(cov.reset)

    def test_host_hypothetical_index_reset(self, benchmark):
        """What BigMap would pay if reset *did* clear the index."""
        index = np.full(1 << 23, -1, dtype=np.int64)

        def wipe():
            index.fill(-1)
        benchmark(wipe)
