"""Host micro-benchmarks of the coverage-map operations.

These time the *literal* data structures (AFL in dense mode — real
full-map sweeps) and BigMap side by side at the paper's map sizes. The
paper's core claim shows up directly in wall time: AFL's reset /
classify+compare / hash scale with the map, BigMap's with the used
region.
"""

import numpy as np
import pytest

from repro.core import AflCoverage, BigMapCoverage, VirginMap

MAP_SIZES = [(1 << 16, "64k"), (1 << 21, "2M"), (1 << 23, "8M")]

#: A realistic per-execution trace: ~9k distinct keys (sqlite3-like).
N_KEYS = 9_000


def _keys(map_size, seed=1):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, map_size, size=N_KEYS, dtype=np.int64)
    counts = rng.integers(1, 20, size=N_KEYS, dtype=np.int64)
    return keys, counts


def _loaded(cls, map_size, **kwargs):
    cov = cls(map_size, **kwargs)
    keys, counts = _keys(map_size)
    cov.update(keys, counts)
    return cov, keys, counts


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_afl_reset_full_map(benchmark, map_size, label):
    cov, keys, counts = _loaded(AflCoverage, map_size,
                                sparse_host_ops=False)
    benchmark.extra_info["map"] = label
    benchmark(cov.reset)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_bigmap_reset_used_region(benchmark, map_size, label):
    cov, keys, counts = _loaded(BigMapCoverage, map_size)
    benchmark.extra_info["map"] = label
    benchmark.extra_info["used_key"] = cov.used_key
    benchmark(cov.reset)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_afl_update(benchmark, map_size, label):
    cov = AflCoverage(map_size, sparse_host_ops=False)
    keys, counts = _keys(map_size)
    benchmark.extra_info["map"] = label

    def step():
        cov.update(keys, counts)
    benchmark(step)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_bigmap_update_two_level(benchmark, map_size, label):
    cov = BigMapCoverage(map_size)
    keys, counts = _keys(map_size)
    cov.update(keys, counts)  # assign slots once; steady state after
    benchmark.extra_info["map"] = label

    def step():
        cov.update(keys, counts)
    benchmark(step)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_afl_classify_compare_full_sweep(benchmark, map_size, label):
    cov, keys, counts = _loaded(AflCoverage, map_size,
                                sparse_host_ops=False)
    virgin = VirginMap(map_size)
    benchmark.extra_info["map"] = label

    def step():
        cov.classify_and_compare(virgin)
    benchmark(step)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_bigmap_classify_compare_used_region(benchmark, map_size, label):
    cov, keys, counts = _loaded(BigMapCoverage, map_size)
    virgin = VirginMap(map_size)
    benchmark.extra_info["map"] = label

    def step():
        cov.classify_and_compare(virgin)
    benchmark(step)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_afl_hash_full_map(benchmark, map_size, label):
    cov, keys, counts = _loaded(AflCoverage, map_size,
                                sparse_host_ops=False)
    cov.classify()
    benchmark.extra_info["map"] = label
    benchmark(cov.hash)


@pytest.mark.parametrize("map_size,label", MAP_SIZES)
def test_bigmap_hash_trimmed(benchmark, map_size, label):
    cov, keys, counts = _loaded(BigMapCoverage, map_size)
    cov.classify()
    benchmark.extra_info["map"] = label
    benchmark(cov.hash)


def test_full_iteration_afl_8m_vs_bigmap_8m(benchmark):
    """One complete fuzzing iteration at 8 MB: the end-to-end gap."""
    map_size = 1 << 23
    afl, keys, counts = _loaded(AflCoverage, map_size,
                                sparse_host_ops=False)
    virgin = VirginMap(map_size)

    def iteration():
        afl.reset()
        afl.update(keys, counts)
        afl.classify_and_compare(virgin)
    benchmark(iteration)


def test_full_iteration_bigmap_8m(benchmark):
    map_size = 1 << 23
    big, keys, counts = _loaded(BigMapCoverage, map_size)
    virgin = VirginMap(map_size)

    def iteration():
        big.reset()
        big.update(keys, counts)
        big.classify_and_compare(virgin)
    benchmark(iteration)
