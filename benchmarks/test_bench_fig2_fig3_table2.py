"""Benches regenerating Figure 2, Figure 3 and Table II.

Each bench times the regeneration and attaches the paper-shape
checkpoints as ``extra_info`` so a benchmark run doubles as a
reproduction check.
"""

import pytest

from repro.analysis.collision import collision_rate


def test_fig2_collision_grid(benchmark):
    from repro.experiments.fig2_collision import compute
    grid = benchmark(compute)
    benchmark.extra_info["rate_50k_at_64k_pct"] = round(grid[3][0], 1)
    assert grid[3][0] == pytest.approx(
        100 * collision_rate(1 << 16, 50_000))


def test_table2_characteristics(benchmark, profile):
    from repro.experiments.table2_benchmarks import compute
    rows = benchmark.pedantic(compute, args=(profile,), rounds=1,
                              iterations=1)
    by_name = {r["benchmark"]: r for r in rows}
    benchmark.extra_info["sqlite3_collision_pct"] = round(
        by_name["sqlite3"]["collision_rate_64k"], 2)
    benchmark.extra_info["instcombine_collision_pct"] = round(
        by_name["instcombine"]["collision_rate_64k"], 2)
    assert len(rows) == 19


def test_fig3_runtime_composition(benchmark, profile, cache):
    from repro.experiments.fig3_runtime import compute
    data = benchmark.pedantic(compute, args=(profile, cache), rounds=1,
                              iterations=1)
    # The paper's observation, as extra info: map-op share at 8M.
    shares = []
    for sizes in data.values():
        cats = sizes["8M"]
        total = sum(cats.values())
        map_ops = total - cats["execution"] - cats["others"]
        shares.append(map_ops / total)
    benchmark.extra_info["map_op_share_8M_avg_pct"] = round(
        100 * sum(shares) / len(shares), 1)
    assert min(shares) > 0.5
