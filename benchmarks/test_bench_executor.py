"""Host benches of the target-executor substrate itself."""

import numpy as np
import pytest

from repro.fuzzer import Mutator
from repro.target import Executor, get_benchmark


@pytest.fixture(scope="module")
def sqlite_small():
    return get_benchmark("sqlite3").build(scale=0.1, seed_scale=0.05)


def test_executor_throughput(benchmark, sqlite_small):
    ex = Executor(sqlite_small.program)
    seed = sqlite_small.seeds[0]
    result = benchmark(lambda: ex.execute(seed))
    benchmark.extra_info["edges_per_exec"] = result.n_edges
    benchmark.extra_info["program_edges"] = sqlite_small.program.n_edges


def test_havoc_throughput(benchmark, sqlite_small):
    mutator = Mutator(np.random.default_rng(0))
    seed = sqlite_small.seeds[0]
    benchmark(lambda: mutator.havoc(seed))


def test_full_pipeline_iteration(benchmark, sqlite_small):
    """Mutate + execute + map update + classify/compare: the real cost
    of one simulated fuzzing iteration on the host."""
    from repro.core import BigMapCoverage, VirginMap
    from repro.instrumentation import build_instrumentation
    program = sqlite_small.program
    ex = Executor(program)
    inst = build_instrumentation("afl-edge", program, 1 << 21)
    cov = BigMapCoverage(1 << 21)
    virgin = VirginMap(1 << 21)
    mutator = Mutator(np.random.default_rng(1))
    seed = sqlite_small.seeds[0]

    def iteration():
        data = mutator.havoc(seed)
        result = ex.execute(data)
        keys, counts = inst.keys_for(
            result, np.frombuffer(data, dtype=np.uint8))
        cov.reset()
        cov.update(keys, counts)
        return cov.classify_and_compare(virgin)
    benchmark(iteration)


def test_program_generation(benchmark):
    from repro.target import ProgramSpec, generate_program
    spec = ProgramSpec(name="bench", n_core_edges=10_000, seed=3,
                       magic_subtree_edges=2_000,
                       magic_subtree_count=8)
    program = benchmark.pedantic(generate_program, args=(spec,),
                                 rounds=3, iterations=1)
    assert program.n_edges >= 12_000


def test_lafintel_transform(benchmark):
    from repro.instrumentation import apply_lafintel
    from repro.target import ProgramSpec, generate_program
    program = generate_program(ProgramSpec(
        name="bench", n_core_edges=20_000, seed=4,
        magic_subtree_edges=5_000, magic_subtree_count=10,
        magic_leaf_edges=500))
    transformed = benchmark.pedantic(apply_lafintel, args=(program,),
                                     rounds=3, iterations=1)
    assert transformed.n_edges > program.n_edges
