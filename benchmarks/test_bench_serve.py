"""Live-server overhead bench: tailing must not tax the workload.

The dashboard contract (DESIGN.md §12) is that the server is a pure
reader — the campaign thread writes the same JSONL artifacts with or
without a server attached, and the server's poll task reads them from
its own thread. This bench runs the identical flush-as-you-go workload
with and without a :class:`BackgroundServer` tailing the directory,
interleaved A/B with median comparison (the PR4 methodology from
``test_bench_telemetry.py``), and pins the with-server cost within a
small guard of the without-server cost.
"""

import os

import pytest

from repro.core.walltime import Stopwatch
from repro.fuzzer import Campaign, CampaignConfig
from repro.target import get_benchmark
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.serve.background import BackgroundServer

#: Tolerated slowdown of the workload while a server tails its
#: artifacts (the ≤2% acceptance bound, with the same slack the
#: telemetry-disabled guard uses).
SERVE_OVERHEAD_GUARD = 1.02

REPEATS = 5


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def config():
    return CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 18,
        scale=0.25, seed_scale=1.0, virtual_seconds=2.0,
        max_real_execs=8_000, rng_seed=11)


def timed_run(built, directory):
    """One telemetry-enabled campaign that flushes its artifacts."""
    recorder = TelemetryRecorder(0)
    watch = Stopwatch()
    result = Campaign(config(), built=built,
                      telemetry=recorder).run()
    recorder.flush(directory)
    return watch.elapsed(), result


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class TestServeOverhead:
    def test_workload_within_guard_while_served(self, built, benchmark,
                                                tmp_path):
        plain_dir = tmp_path / "plain"
        served_dir = tmp_path / "served"
        os.makedirs(plain_dir)
        os.makedirs(served_dir)
        plain_times, served_times = [], []
        results = set()
        with BackgroundServer(str(served_dir),
                              poll_interval=0.05) as server:
            for _ in range(REPEATS):
                elapsed, result = timed_run(built, str(plain_dir))
                plain_times.append(elapsed)
                results.add((result.execs,
                             result.discovered_locations))
                elapsed, result = timed_run(built, str(served_dir))
                served_times.append(elapsed)
                results.add((result.execs,
                             result.discovered_locations))
            url = server.url
        plain, served = median(plain_times), median(served_times)
        benchmark.extra_info["plain_median_s"] = round(plain, 4)
        benchmark.extra_info["served_median_s"] = round(served, 4)
        benchmark.extra_info["served_over_plain"] = \
            round(served / plain, 3) if plain else float("inf")
        benchmark.extra_info["url"] = url
        benchmark(lambda: None)
        assert len(results) == 1, "serving changed campaign results"
        assert served <= plain * SERVE_OVERHEAD_GUARD, (
            f"campaign under a tailing server ({served:.4f}s) slower "
            f"than {SERVE_OVERHEAD_GUARD}x the unserved run "
            f"({plain:.4f}s); the server is taxing the workload")
