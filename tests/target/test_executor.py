"""Unit tests for the vectorized executor (and the hand-built-program
helper shared with the instrumentation tests)."""

import numpy as np
import pytest

from repro.target import (NO_CRASH, NO_LOOP, NO_PARENT, Executor, Guard,
                          MAX_MAGIC_WIDTH, Program, _build_csr)


def build_program(edges, input_len=32, name="hand-built",
                  static_edges=None):
    """Construct a Program from a list of edge dicts.

    Recognized keys (all optional): ``kind``, ``parent``, ``off``,
    ``val``, ``width``, ``magic``, ``loop_off``, ``loop_cap``,
    ``crash``. Defaults give an unguarded root edge.
    """
    n = len(edges)
    parent = np.array([e.get("parent", NO_PARENT) for e in edges],
                      dtype=np.int64)
    kind = np.array([e.get("kind", Guard.ALWAYS) for e in edges],
                    dtype=np.uint8)
    off = np.array([e.get("off", 0) for e in edges], dtype=np.int32)
    val = np.array([e.get("val", 0) for e in edges], dtype=np.uint8)
    width = np.array([e.get("width", 1) for e in edges], dtype=np.int32)
    magic = np.zeros((n, MAX_MAGIC_WIDTH), dtype=np.uint8)
    for i, e in enumerate(edges):
        operand = e.get("magic", ())
        magic[i, :len(operand)] = operand
    loop_off = np.array([e.get("loop_off", NO_LOOP) for e in edges],
                        dtype=np.int32)
    loop_cap = np.array([e.get("loop_cap", 1) for e in edges],
                        dtype=np.int64)
    crash = np.array([e.get("crash", NO_CRASH) for e in edges],
                     dtype=np.int32)

    depth = np.zeros(n, dtype=np.int32)
    for i in range(n):
        if parent[i] != NO_PARENT:
            depth[i] = depth[parent[i]] + 1
    dst_block = np.arange(1, n + 1, dtype=np.int64)
    src_block = np.where(parent == NO_PARENT, 0,
                         dst_block[np.maximum(parent, 0)])
    child_off, child_idx = _build_csr(parent, n)
    program = Program(
        name=name, input_len=input_len, parent=parent, depth=depth,
        kind=kind, off=off, val=val, width=width, magic=magic,
        loop_off=loop_off, loop_cap=loop_cap, src_block=src_block,
        dst_block=dst_block, crash_site=crash, child_off=child_off,
        child_idx=child_idx,
        roots=np.flatnonzero(parent == NO_PARENT), n_blocks=n + 1,
        static_edges=static_edges or n, meta={})
    program.validate()
    return program


@pytest.fixture()
def five_edge_program():
    """Root → {BYTE_LT child, BYTE_EQ child}; the LT child has an
    ALWAYS grandchild carrying a loop; plus one NEVER leaf."""
    return build_program([
        {"kind": Guard.ALWAYS},
        {"kind": Guard.BYTE_LT, "parent": 0, "off": 1, "val": 100},
        {"kind": Guard.BYTE_EQ, "parent": 0, "off": 2, "val": 7},
        {"kind": Guard.ALWAYS, "parent": 1, "loop_off": 3,
         "loop_cap": 8},
        {"kind": Guard.NEVER, "parent": 0},
    ])


class TestTraceCorrectness:
    def test_all_guards_satisfied(self, five_edge_program):
        ex = Executor(five_edge_program)
        r = ex.execute(bytes([0, 50, 7, 5]))
        assert r.edges.tolist() == [0, 1, 2, 3]
        # Loop edge 3: 1 + inp[3] % 8 = 6; others hit once.
        assert r.counts.tolist() == [1, 1, 1, 6]
        assert r.traversals == 9
        assert r.crash is None and r.interesting is False

    def test_guards_block_subtrees(self, five_edge_program):
        ex = Executor(five_edge_program)
        r = ex.execute(bytes([0, 200, 9, 0]))
        # LT fails (200 >= 100) so its child never runs; EQ fails too.
        assert r.edges.tolist() == [0]
        assert r.traversals == 1

    def test_never_edge_never_taken(self, five_edge_program):
        ex = Executor(five_edge_program)
        for data in (bytes(4), bytes([255] * 4), bytes([0, 50, 7, 5])):
            assert 4 not in ex.execute(data).edges.tolist()

    def test_short_input_zero_padded(self, five_edge_program):
        ex = Executor(five_edge_program)
        # Missing bytes read as zero: LT passes (0 < 100), EQ fails.
        r = ex.execute(b"")
        assert r.edges.tolist() == [0, 1, 3]

    def test_long_input_truncated(self, five_edge_program):
        ex = Executor(five_edge_program)
        a = ex.execute(bytes([0, 50, 7, 5]))
        b = ex.execute(bytes([0, 50, 7, 5]) + bytes(100))
        assert a.edges.tolist() == b.edges.tolist()

    def test_n_edges_property(self, five_edge_program):
        r = Executor(five_edge_program).execute(bytes(4))
        assert r.n_edges == r.edges.size


class TestMagicGating:
    def test_subtree_locked_until_magic_present(self):
        program = build_program([
            {"kind": Guard.ALWAYS},
            {"kind": Guard.EQ_MULTI, "parent": 0, "off": 4, "width": 4,
             "magic": [0xCA, 0xFE, 0xBA, 0xBE]},
            {"kind": Guard.ALWAYS, "parent": 1},
            {"kind": Guard.ALWAYS, "parent": 2},
        ], input_len=16)
        ex = Executor(program)
        locked = ex.execute(bytes(16))
        assert locked.edges.tolist() == [0]
        almost = bytearray(16)
        almost[4:8] = b"\xca\xfe\xba\xbd"  # last byte off by one
        assert ex.execute(bytes(almost)).edges.tolist() == [0]
        unlocked = bytearray(16)
        unlocked[4:8] = b"\xca\xfe\xba\xbe"
        assert ex.execute(bytes(unlocked)).edges.tolist() == [0, 1, 2, 3]

    def test_magic_mask_vs_discoverable(self):
        program = build_program([
            {"kind": Guard.ALWAYS},
            {"kind": Guard.EQ_MULTI, "parent": 0, "off": 0, "width": 2,
             "magic": [1, 2]},
            {"kind": Guard.ALWAYS, "parent": 1},
            {"kind": Guard.NEVER, "parent": 0},
        ], input_len=16)
        assert program.discoverable_mask().tolist() == \
            [True, True, True, False]
        assert program.practically_discoverable_mask().tolist() == \
            [True, False, False, False]


class TestCrashes:
    def test_crash_site_triggers(self):
        program = build_program([
            {"kind": Guard.ALWAYS},
            {"kind": Guard.BYTE_EQ, "parent": 0, "off": 0, "val": 66,
             "crash": 3},
        ])
        ex = Executor(program)
        assert ex.execute(bytes(4)).crash is None
        r = ex.execute(bytes([66, 0]))
        assert r.crash is not None
        assert r.crash.site_id == 3
        assert r.crash.edge_index == 1
        assert r.crash.stack == (1, 2)

    def test_crash_truncates_deeper_trace(self):
        program = build_program([
            {"kind": Guard.ALWAYS},
            {"kind": Guard.ALWAYS, "parent": 0, "crash": 0},
            {"kind": Guard.ALWAYS, "parent": 1},
            {"kind": Guard.ALWAYS, "parent": 2},
        ])
        r = Executor(program).execute(bytes(4))
        # Execution stops at the crashing edge (depth 1).
        assert r.edges.tolist() == [0, 1]

    def test_first_crash_in_execution_order_wins(self):
        program = build_program([
            {"kind": Guard.ALWAYS},
            {"kind": Guard.ALWAYS, "parent": 0, "crash": 7},
            {"kind": Guard.ALWAYS, "parent": 1, "crash": 2},
        ])
        r = Executor(program).execute(bytes(4))
        assert r.crash.site_id == 7

    def test_crash_dedup_key_stable(self):
        program = build_program([{"kind": Guard.ALWAYS, "crash": 1}])
        ex = Executor(program)
        a = ex.execute(bytes(4)).crash
        b = ex.execute(bytes([9] * 4)).crash
        assert a.crashwalk_key() == b.crashwalk_key()
        assert a.fault_address == b.fault_address


class TestDeterminism:
    def test_executor_is_pure(self, five_edge_program):
        ex = Executor(five_edge_program)
        data = bytes([0, 50, 7, 200])
        first = ex.execute(data)
        for _ in range(3):
            again = ex.execute(data)
            assert np.array_equal(first.edges, again.edges)
            assert np.array_equal(first.counts, again.counts)
            assert first.traversals == again.traversals
