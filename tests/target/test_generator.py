"""Generator invariants: determinism, CSR structure, edge accounting."""

import numpy as np
import pytest

from repro.core.errors import ProgramSpecError
from repro.target import (NO_LOOP, NO_PARENT, Guard, ProgramSpec,
                          generate_program)

SPEC = ProgramSpec(
    name="gen-test", n_core_edges=300, input_len=96, seed=11,
    magic_subtree_edges=40, magic_subtree_count=2, magic_leaf_edges=5,
    never_leaf_edges=4, n_crash_sites=4, n_magic_crash_sites=2)


@pytest.fixture(scope="module")
def program():
    return generate_program(SPEC)


ARRAY_FIELDS = ("parent", "depth", "kind", "off", "val", "width",
                "magic", "loop_off", "loop_cap", "src_block",
                "dst_block", "crash_site", "child_off", "child_idx",
                "roots")


class TestDeterminism:
    def test_same_spec_identical_arrays(self, program):
        again = generate_program(SPEC)
        for field in ARRAY_FIELDS:
            assert np.array_equal(getattr(program, field),
                                  getattr(again, field)), field
        assert again.n_blocks == program.n_blocks
        assert again.static_edges == program.static_edges

    def test_seed_changes_program(self, program):
        other = generate_program(
            ProgramSpec(**{**SPEC.__dict__, "seed": SPEC.seed + 1}))
        assert other.n_edges == program.n_edges
        differs = any(
            not np.array_equal(getattr(program, f), getattr(other, f))
            for f in ("kind", "off", "parent"))
        assert differs


class TestStructure:
    def test_edge_accounting(self, program):
        expected = (SPEC.n_core_edges +
                    SPEC.magic_subtree_count *
                    (1 + SPEC.magic_subtree_edges) +
                    SPEC.magic_leaf_edges + SPEC.never_leaf_edges)
        assert program.n_edges == expected
        assert program.n_blocks == expected + 1

    def test_csr_invariants(self, program):
        child_off, child_idx = program.child_off, program.child_idx
        n = program.n_edges
        assert child_off.shape == (n + 1,)
        assert child_off[0] == 0 and child_off[-1] == child_idx.size
        assert np.all(np.diff(child_off) >= 0)
        # Every non-root edge appears exactly once as someone's child.
        n_roots = program.roots.size
        assert child_idx.size == n - n_roots
        for e in range(n):
            kids = child_idx[child_off[e]:child_off[e + 1]]
            assert np.all(program.parent[kids] == e)
            assert np.all(np.diff(kids) > 0)  # ascending, unique

    def test_parents_precede_children(self, program):
        nonroot = program.parent != NO_PARENT
        assert np.all(program.parent[nonroot] <
                      np.arange(program.n_edges)[nonroot])
        assert np.all(program.depth[nonroot] ==
                      program.depth[program.parent[nonroot]] + 1)

    def test_mask_counts(self, program):
        practical = program.practically_discoverable_mask()
        assert int(practical.sum()) == SPEC.n_core_edges
        discoverable = program.discoverable_mask()
        assert int(discoverable.sum()) == \
            program.n_edges - SPEC.never_leaf_edges
        assert np.all(discoverable[practical])

    def test_magic_gate_count(self, program):
        gates = program.kind == np.uint8(Guard.EQ_MULTI)
        assert int(gates.sum()) == \
            SPEC.magic_subtree_count + SPEC.magic_leaf_edges
        assert np.all(program.width[gates] >= 2)
        assert np.all(program.off[gates] + program.width[gates] <=
                      program.input_len)

    def test_loops(self, program):
        loops = program.loop_off != NO_LOOP
        assert int(loops.sum()) > 0
        caps = program.loop_cap[loops]
        assert np.all(caps >= 8)
        assert np.all((caps & (caps - 1)) == 0)  # powers of two
        lo, hi = program.meta["loop_region"]
        assert np.all((program.loop_off[loops] >= lo) &
                      (program.loop_off[loops] < hi))
        # Guard offsets never read the loop region.
        guarded = np.isin(program.kind,
                          [np.uint8(Guard.BYTE_LT),
                           np.uint8(Guard.BYTE_EQ)])
        offs = program.off[guarded]
        assert not np.any((offs >= lo) & (offs < hi))

    def test_crash_sites(self, program):
        sites = program.crash_site[program.crash_site >= 0]
        assert sites.size == \
            SPEC.n_crash_sites + SPEC.n_magic_crash_sites
        assert np.unique(sites).size == sites.size

    def test_spec_round_trip(self, program):
        assert program.meta["spec"] is SPEC
        assert program.meta["laf_applied"] is False

    def test_no_magic_means_no_eq_multi(self):
        plain = generate_program(
            ProgramSpec(name="plain", n_core_edges=80, input_len=64,
                        seed=3))
        assert not np.any(plain.kind == np.uint8(Guard.EQ_MULTI))
        assert np.array_equal(plain.discoverable_mask(),
                              plain.practically_discoverable_mask())


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n_core_edges": 0},
        {"input_len": 8},
        {"magic_width": 1},
        {"magic_width": 9},
        {"loop_fraction": 1.5},
        {"max_depth": 1},
        {"growth": 1.0},
        {"never_leaf_edges": -1},
        {"static_edges": 0},
    ])
    def test_bad_specs_rejected(self, kwargs):
        base = dict(name="bad", n_core_edges=10, input_len=64)
        base.update(kwargs)
        with pytest.raises(ProgramSpecError):
            ProgramSpec(**base)
