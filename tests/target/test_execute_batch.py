"""Scalar-equivalence tests for the batched executor.

Every trace in ``execute_batch`` must be bit-identical to what
``execute`` produces for the same input: same ascending edge list,
same hit counts (including loop-edge modular counts), same traversal
total, same crash selection and post-crash truncation.
"""

import numpy as np
import pytest

from repro.instrumentation import build_instrumentation, metric_names
from repro.target import Executor, get_benchmark

from tests.target.test_executor import build_program


def pack_rows(rows, width=None):
    """Zero-padded (n, width) matrix plus per-row uint8 views."""
    width = width or max((len(r) for r in rows), default=1)
    mat = np.zeros((len(rows), max(width, 1)), dtype=np.uint8)
    views = []
    for i, r in enumerate(rows):
        arr = np.frombuffer(r, dtype=np.uint8)
        mat[i, :arr.size] = arr
        views.append(arr)
    return mat, views


def random_rows(program, rng, n):
    rows = []
    for _ in range(n):
        length = int(rng.integers(0, program.input_len + 16))
        rows.append(rng.integers(0, 256, size=length,
                                 dtype=np.uint8).tobytes())
    return rows


def assert_batch_matches_scalar(executor, rows):
    mat, _ = pack_rows(rows)
    batch = executor.execute_batch(mat)
    assert batch.n == len(rows)
    for i, row in enumerate(rows):
        scalar = executor.execute(row)
        edges, counts = batch.segment(i)
        assert np.array_equal(edges, scalar.edges), f"row {i} edges"
        assert np.array_equal(counts, scalar.counts), f"row {i} counts"
        assert int(batch.traversals[i]) == scalar.traversals
        if scalar.crash is None:
            assert batch.crashes[i] is None
        else:
            assert batch.crashes[i] == scalar.crash
        mat_result = batch.result_for(i)
        assert mat_result.n_edges == scalar.n_edges


class TestExecuteBatchEquivalence:
    def test_benchmark_random_inputs(self):
        bench = get_benchmark("zlib").build(scale=0.05)
        executor = Executor(bench.program)
        rng = np.random.default_rng(7)
        rows = bench.seeds[:8] + random_rows(bench.program, rng, 40)
        assert_batch_matches_scalar(executor, rows)

    def test_mutated_seeds_hit_crashes(self):
        """Bit-flipped seeds reach deep paths, including crash edges."""
        bench = get_benchmark("libpng").build(scale=0.05)
        executor = Executor(bench.program)
        rng = np.random.default_rng(11)
        rows = []
        for seed in bench.seeds * 8:
            buf = bytearray(seed)
            for _ in range(int(rng.integers(1, 8))):
                buf[int(rng.integers(0, len(buf)))] = int(
                    rng.integers(0, 256))
            rows.append(bytes(buf))
        assert_batch_matches_scalar(executor, rows)

    def test_loop_counts_match(self):
        program = build_program([
            {},  # unguarded root
            {"parent": 0, "loop_off": 3, "loop_cap": 13},
            {"parent": 0, "loop_off": 5, "loop_cap": 200},
        ])
        executor = Executor(program)
        rng = np.random.default_rng(3)
        rows = random_rows(program, rng, 32)
        assert_batch_matches_scalar(executor, rows)

    def test_crash_truncation_matches(self):
        from repro.target import Guard
        program = build_program([
            {},
            {"parent": 0, "kind": Guard.BYTE_EQ, "off": 0, "val": 65,
             "crash": 1},
            {"parent": 0, "kind": Guard.BYTE_EQ, "off": 1, "val": 66,
             "crash": 2},
            {"parent": 1},
            {"parent": 2},
        ])
        executor = Executor(program)
        rows = [b"AB" + bytes(6), b"A" + bytes(7), b"\x00B" + bytes(6),
                bytes(8)]
        assert_batch_matches_scalar(executor, rows)
        mat, _ = pack_rows(rows)
        batch = executor.execute_batch(mat)
        # Both guards hit on row 0; the shallower-ranked crash wins.
        assert batch.crashes[0] is not None
        assert batch.crashes[3] is None

    def test_empty_batch(self):
        bench = get_benchmark("zlib").build(scale=0.02)
        executor = Executor(bench.program)
        batch = executor.execute_batch(
            np.zeros((0, 8), dtype=np.uint8))
        assert batch.n == 0
        assert batch.edges.size == 0

    def test_rows_longer_than_input_len_truncate(self):
        bench = get_benchmark("zlib").build(scale=0.02)
        executor = Executor(bench.program)
        long_row = bytes(range(256)) * 2
        assert_batch_matches_scalar(executor, [long_row])


class TestKeysForBatch:
    @pytest.mark.parametrize("metric", metric_names())
    def test_flat_keys_match_per_trace(self, metric):
        bench = get_benchmark("zlib").build(scale=0.05)
        executor = Executor(bench.program)
        instr = build_instrumentation(metric, bench.program, 1 << 14)
        rng = np.random.default_rng(5)
        rows = bench.seeds[:4] + random_rows(bench.program, rng, 12)
        mat, views = pack_rows(rows)
        batch = executor.execute_batch(mat)
        keys, counts = instr.keys_for_batch(batch, views)
        assert keys.size == batch.edges.size
        for i, row in enumerate(rows):
            scalar = executor.execute(row)
            k, c = instr.keys_for(scalar, views[i])
            lo, hi = int(batch.offsets[i]), int(batch.offsets[i + 1])
            assert np.array_equal(keys[lo:hi], k), f"{metric} row {i}"
            assert np.array_equal(counts[lo:hi], c)
