"""Seed-corpus reproducibility and shaping."""

import numpy as np
import pytest

from repro.target import (Executor, Guard, ProgramSpec,
                          generate_program, generate_seed_corpus)


@pytest.fixture(scope="module")
def program():
    return generate_program(ProgramSpec(
        name="seed-test", n_core_edges=200, input_len=64, seed=5,
        magic_subtree_edges=30, magic_subtree_count=2))


def test_reproducible(program):
    a = generate_seed_corpus(program, 8, seed=3)
    b = generate_seed_corpus(program, 8, seed=3)
    assert a == b
    assert len(a) == 8
    assert all(len(s) == program.input_len for s in a)


def test_seed_param_changes_corpus(program):
    a = generate_seed_corpus(program, 8, seed=3)
    b = generate_seed_corpus(program, 8, seed=4)
    assert a != b


def test_loop_region_clamped(program):
    lo, hi = program.meta["loop_region"]
    for s in generate_seed_corpus(program, 16, seed=1):
        buf = np.frombuffer(s, dtype=np.uint8)
        assert np.all(buf[lo:hi] < 161)


def test_seeds_exercise_the_trunk(program):
    ex = Executor(program)
    for s in generate_seed_corpus(program, 8, seed=2):
        r = ex.execute(s)
        assert r.n_edges >= program.roots.size
        assert r.crash is None


def test_magic_probability_unlocks_gates(program):
    gates = np.flatnonzero(program.kind == np.uint8(Guard.EQ_MULTI))
    assert gates.size > 0
    ex = Executor(program)

    def gates_hit(corpus):
        hit = 0
        for s in corpus:
            trace = ex.execute(s).edges
            hit += int(np.isin(gates, trace).any())
        return hit

    locked = generate_seed_corpus(program, 12, seed=6)
    stamped = generate_seed_corpus(program, 12, seed=6,
                                   magic_probability=1.0)
    assert gates_hit(stamped) > gates_hit(locked)


def test_bad_args_rejected(program):
    with pytest.raises(ValueError):
        generate_seed_corpus(program, -1)
    with pytest.raises(ValueError):
        generate_seed_corpus(program, 1, magic_probability=1.5)
