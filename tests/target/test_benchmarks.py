"""Benchmark-registry parity: Table II/III counts, names and the
characteristics table recorded in EXPERIMENTS.md."""

import pathlib
import re

import pytest

from repro.target import (FIG3_BENCHMARK_NAMES, FIG8_BENCHMARK_NAMES,
                          TABLE2_BENCHMARKS, TABLE3_BENCHMARKS,
                          benchmark_names, get_benchmark)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _experiments_table():
    """Parse the Table II characteristics rows out of EXPERIMENTS.md."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    pattern = re.compile(
        r"^\| ([\w.-]+) \| (\d+) \| (\d+) \| (\d+) \| (v[\w.]+) \|$",
        re.MULTILINE)
    rows = {}
    for name, seeds, discovered, static, version in pattern.findall(text):
        rows[name] = (int(seeds), int(discovered), int(static), version)
    return rows


class TestCounts:
    def test_table2_has_19_rows(self):
        assert len(TABLE2_BENCHMARKS) == 19

    def test_table3_has_13_rows(self):
        assert len(TABLE3_BENCHMARKS) == 13

    def test_names_unique(self):
        names = benchmark_names("all")
        assert len(names) == len(set(names))
        t2 = [c.name for c in TABLE2_BENCHMARKS]
        assert len(t2) == len(set(t2))

    def test_table3_is_all_llvm(self):
        for config in TABLE3_BENCHMARKS:
            assert config.static_edges == 977_899
            assert config.version == "v10.0.1"

    def test_figure_selections_resolve(self):
        assert len(FIG3_BENCHMARK_NAMES) == 6
        assert len(FIG8_BENCHMARK_NAMES) == 6
        for name in FIG3_BENCHMARK_NAMES + FIG8_BENCHMARK_NAMES:
            get_benchmark(name)


class TestExperimentsParity:
    def test_registry_matches_recorded_table(self):
        rows = _experiments_table()
        assert len(rows) == 19
        for config in TABLE2_BENCHMARKS:
            seeds, discovered, static, version = rows[config.name]
            assert config.n_seeds == seeds, config.name
            assert config.discovered_edges == discovered, config.name
            assert config.static_edges == static, config.name
            assert config.version == version, config.name

    def test_static_edges_at_least_discovered(self):
        for config in TABLE2_BENCHMARKS + tuple(TABLE3_BENCHMARKS):
            assert config.static_edges > config.discovered_edges


class TestRegistry:
    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("does-not-exist")

    def test_selectors(self):
        assert benchmark_names("table2") == \
            [c.name for c in TABLE2_BENCHMARKS]
        assert benchmark_names("table3") == \
            [c.name for c in TABLE3_BENCHMARKS]
        assert set(benchmark_names("fig3")) <= set(benchmark_names("all"))
        with pytest.raises(ValueError):
            benchmark_names("table9")

    def test_build_scaled(self):
        built = get_benchmark("zlib").build(scale=0.05)
        assert built.program.name == "zlib"
        assert len(built.seeds) >= 1
        practical = built.program.practically_discoverable_mask()
        assert int(practical.sum()) == round(722 * 0.05)

    def test_spec_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            get_benchmark("zlib").spec(scale=0)
