"""Every module under ``repro`` must import cleanly."""

import importlib
import pkgutil

import repro


def _walk():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix=repro.__name__ + "."):
        yield info.name


def test_every_repro_module_imports():
    names = sorted(_walk())
    assert names, "package walk found no modules"
    for name in names:
        importlib.import_module(name)


def test_target_package_present():
    names = set(_walk())
    for module in ("cfg", "generator", "executor", "crashes", "seeds",
                   "benchmarks"):
        assert f"repro.target.{module}" in names
