"""SNAP001/EXP001: cross-module drift between hand-maintained
structures — campaign state vs checkpoint snapshot, experiment modules
vs the runner registry."""

from repro.statlint import LintConfig

from lint_helpers import rules_fired

#: A minimal campaign/checkpoint pair with full snapshot coverage.
CAMPAIGN_OK = """\
    class Campaign:
        def __init__(self, config):
            self.config = config
            self.execs = 0
            self.hangs = 0

        def start(self):
            self.model = object()
    """

CHECKPOINT_OK = """\
    def snapshot_campaign(campaign):
        return {
            "execs": campaign.execs,
            "hangs": campaign.hangs,
            "model": campaign.model,
        }
    """

SNAP_CONFIG = LintConfig(
    enable=("SNAP001",),
    snapshot_exempt=("config",),
    snapshot_methods=("__init__", "start"),
    campaign_path="repro/fuzzer/campaign.py",
    checkpoint_path="repro/fuzzer/checkpoint.py")


def snap_tree(campaign=CAMPAIGN_OK, checkpoint=CHECKPOINT_OK):
    return {"repro/fuzzer/campaign.py": campaign,
            "repro/fuzzer/checkpoint.py": checkpoint}


class TestSnapshotCoverage:
    def test_full_coverage_is_clean(self, lint_tree):
        result = lint_tree(snap_tree(), config=SNAP_CONFIG)
        assert rules_fired(result) == []

    def test_uncovered_field_fires(self, lint_tree):
        # Deliberately drop one captured field from the snapshot.
        omitted = CHECKPOINT_OK.replace(
            '            "hangs": campaign.hangs,\n', "")
        assert omitted != CHECKPOINT_OK
        result = lint_tree(snap_tree(checkpoint=omitted),
                           config=SNAP_CONFIG)
        assert rules_fired(result) == ["SNAP001"]
        (finding,) = result.active
        assert "'self.hangs'" in finding.message
        assert finding.path.endswith("campaign.py")

    def test_new_campaign_field_fires(self, lint_tree):
        # The symmetric drift: Campaign grows a field the snapshot
        # (and the exempt list) never heard of.
        grown = (CAMPAIGN_OK.rstrip() +
                 "\n            self.restarts = 0\n")
        result = lint_tree(snap_tree(campaign=grown),
                           config=SNAP_CONFIG)
        assert rules_fired(result) == ["SNAP001"]
        assert "'self.restarts'" in result.active[0].message

    def test_exempt_field_is_clean(self, lint_tree):
        grown = (CAMPAIGN_OK.rstrip() +
                 "\n            self.restarts = 0\n")
        exempting = LintConfig(
            enable=SNAP_CONFIG.enable,
            snapshot_exempt=("config", "restarts"),
            snapshot_methods=SNAP_CONFIG.snapshot_methods)
        result = lint_tree(snap_tree(campaign=grown), config=exempting)
        assert rules_fired(result) == []

    def test_getattr_read_counts_as_captured(self, lint_tree):
        omitted = CHECKPOINT_OK.replace(
            '            "hangs": campaign.hangs,\n',
            '            "hangs": getattr(campaign, "hangs", 0),\n')
        assert omitted != CHECKPOINT_OK
        result = lint_tree(snap_tree(checkpoint=omitted),
                           config=SNAP_CONFIG)
        assert rules_fired(result) == []

    def test_stale_exemption_captured_field_fires(self, lint_tree):
        # "execs" is exempt AND captured: the exemption is stale.
        stale = LintConfig(
            enable=SNAP_CONFIG.enable,
            snapshot_exempt=("config", "execs"),
            snapshot_methods=SNAP_CONFIG.snapshot_methods)
        result = lint_tree(snap_tree(), config=stale)
        assert rules_fired(result) == ["SNAP001"]
        (finding,) = result.active
        assert "stale" in finding.message
        assert finding.path.endswith("checkpoint.py")

    def test_stale_exemption_unknown_field_fires(self, lint_tree):
        stale = LintConfig(
            enable=SNAP_CONFIG.enable,
            snapshot_exempt=("config", "never_existed"),
            snapshot_methods=SNAP_CONFIG.snapshot_methods)
        result = lint_tree(snap_tree(), config=stale)
        assert rules_fired(result) == ["SNAP001"]
        assert "never_existed" in result.active[0].message


RUNNER_OK = """\
    from . import fig1_demo

    EXPERIMENTS = {
        "fig1": fig1_demo.run,
    }

    ORDER = ("fig1",)
    """

EXPERIMENT_OK = '''\
    """Demo experiment."""

    EXPERIMENT_ID = "fig1"


    def run(profile):
        return "report"
    '''

EXP_CONFIG = LintConfig(enable=("EXP001",),
                        runner_path="repro/experiments/runner.py")


def exp_tree(runner=RUNNER_OK, experiment=EXPERIMENT_OK,
             module="fig1_demo.py"):
    return {"repro/experiments/runner.py": runner,
            f"repro/experiments/{module}": experiment}


class TestExperimentRegistry:
    def test_registered_with_metadata_is_clean(self, lint_tree):
        result = lint_tree(exp_tree(), config=EXP_CONFIG)
        assert rules_fired(result) == []

    def test_unregistered_module_fires(self, lint_tree):
        result = lint_tree(exp_tree(module="fig2_orphan.py"),
                           config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "not registered" in result.active[0].message

    def test_missing_experiment_id_fires(self, lint_tree):
        stripped = EXPERIMENT_OK.replace(
            '    EXPERIMENT_ID = "fig1"\n', "")
        result = lint_tree(exp_tree(experiment=stripped),
                           config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "EXPERIMENT_ID" in result.active[0].message

    def test_mismatched_experiment_id_fires(self, lint_tree):
        renamed = EXPERIMENT_OK.replace('"fig1"', '"fig99"')
        result = lint_tree(exp_tree(experiment=renamed),
                           config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "does not match" in result.active[0].message

    def test_missing_docstring_fires(self, lint_tree):
        undocumented = EXPERIMENT_OK.replace(
            '    """Demo experiment."""\n', "")
        result = lint_tree(exp_tree(experiment=undocumented),
                           config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "docstring" in result.active[0].message

    def test_missing_run_fires(self, lint_tree):
        runless = EXPERIMENT_OK.replace("def run(", "def make(")
        result = lint_tree(exp_tree(experiment=runless),
                           config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "run()" in result.active[0].message

    def test_registered_but_not_in_order_fires(self, lint_tree):
        no_order = RUNNER_OK.replace('    ORDER = ("fig1",)\n',
                                     "    ORDER = ()\n")
        result = lint_tree(exp_tree(runner=no_order), config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "ORDER" in result.active[0].message

    def test_order_entry_without_registration_fires(self, lint_tree):
        extra_order = RUNNER_OK.replace('ORDER = ("fig1",)',
                                        'ORDER = ("fig1", "ghost")')
        result = lint_tree(exp_tree(runner=extra_order),
                           config=EXP_CONFIG)
        assert rules_fired(result) == ["EXP001"]
        assert "ghost" in result.active[0].message

    def test_annotated_registry_is_readable(self, lint_tree):
        # The real runner declares EXPERIMENTS with a type annotation.
        annotated = RUNNER_OK.replace(
            "EXPERIMENTS = {",
            "EXPERIMENTS: dict = {")
        result = lint_tree(exp_tree(runner=annotated), config=EXP_CONFIG)
        assert rules_fired(result) == []
