"""Golden tests for the fleet state-machine rules (FSM001/FSM002).

Each family case follows the acceptance shape: a seeded violation that
must fire, a suppressed variant, and a fixed variant that must pass.
The fixture trees mirror the real layout (``repro/fleet/store.py``
declaring ``TRIAL_STATES``/``_ALLOWED``; call sites resolving through
imports), so the tests exercise symbol resolution, the call graph and
constant propagation end to end.
"""

from repro.statlint import LintConfig

from lint_helpers import rules_fired

STORE = '''
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    LOST = "lost"

    TRIAL_STATES = (PENDING, RUNNING, DONE, LOST)

    _ALLOWED = {
        PENDING: (RUNNING,),
        RUNNING: (DONE, LOST),
        DONE: (),
        LOST: (),
    }


    class ResultsStore:
        def transition(self, trial_id, to_state):
            self._transition_in(None, trial_id, to_state)

        def force_state(self, trial_id, to_state):
            self._transition_in(None, trial_id, to_state)

        def _transition_in(self, conn, trial_id, to_state):
            pass
'''

# A dispatcher that enters every non-initial state through the named
# constants, including one conditional join — the clean shape.
DISPATCHER_CLEAN = '''
    from repro.fleet.store import RUNNING, DONE, LOST

    def run(store, trial_id, ok):
        store.transition(trial_id, RUNNING)
        state = DONE if ok else LOST
        store.transition(trial_id, state)
'''

FSM1 = LintConfig(enable=("FSM001",))
FSM2 = LintConfig(enable=("FSM002",))


def test_clean_state_machine_passes(lint_tree):
    result = lint_tree({
        "repro/fleet/store.py": STORE,
        "repro/fleet/dispatcher.py": DISPATCHER_CLEAN,
    }, LintConfig(enable=("FSM001", "FSM002")))
    assert result.ok, [f.message for f in result.active]


def test_unknown_state_through_a_named_constant(lint_tree):
    """Constant propagation, not literal matching: the bogus state
    arrives via a locally defined constant, resolved project-wide."""
    result = lint_tree({
        "repro/fleet/store.py": STORE,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.store import RUNNING, DONE, LOST

            ZOMBIE = "zombie"

            def run(store, trial_id):
                store.transition(trial_id, RUNNING)
                store.transition(trial_id, DONE)
                store.transition(trial_id, LOST)
                store.transition(trial_id, ZOMBIE)
        ''',
    }, FSM1)
    assert rules_fired(result) == ["FSM001"]
    (finding,) = result.active
    assert "'zombie'" in finding.message
    assert "not a declared trial state" in finding.message


def test_raw_state_string_outside_the_store(lint_tree):
    result = lint_tree({
        "repro/fleet/store.py": STORE,
        "repro/fleet/dispatcher.py": '''
            def run(store, trial_id):
                store.transition(trial_id, "running")
        ''',
    }, FSM1)
    (finding,) = result.active
    assert finding.rule == "FSM001"
    assert "raw state string 'running'" in finding.message
    assert finding.path.endswith("dispatcher.py")


def test_transition_to_a_never_legal_target(lint_tree):
    """'orphan' is declared but no graph edge enters it, so the
    transition raises at runtime on every path."""
    store = STORE.replace(
        'LOST = "lost"', 'LOST = "lost"\n    ORPHAN = "orphan"'
    ).replace(
        "TRIAL_STATES = (PENDING, RUNNING, DONE, LOST)",
        "TRIAL_STATES = (PENDING, RUNNING, DONE, LOST, ORPHAN)"
    ).replace("        LOST: (),", "        LOST: (),\n        ORPHAN: (),")
    result = lint_tree({
        "repro/fleet/store.py": store,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.store import ORPHAN

            def run(store, trial_id):
                store.transition(trial_id, ORPHAN)
        ''',
    }, FSM1)
    (finding,) = result.active
    assert finding.rule == "FSM001"
    assert "can never succeed" in finding.message


def test_force_state_accepts_any_declared_state(lint_tree):
    """force_state bypasses the graph on purpose (resume repair), so
    only the declared-state check applies to it."""
    store = STORE.replace(
        'LOST = "lost"', 'LOST = "lost"\n    ORPHAN = "orphan"'
    ).replace(
        "TRIAL_STATES = (PENDING, RUNNING, DONE, LOST)",
        "TRIAL_STATES = (PENDING, RUNNING, DONE, LOST, ORPHAN)"
    ).replace("        LOST: (),", "        LOST: (),\n        ORPHAN: (),")
    result = lint_tree({
        "repro/fleet/store.py": store,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.store import ORPHAN

            def repair(store, trial_id):
                store.force_state(trial_id, ORPHAN)
        ''',
    }, FSM1)
    assert result.ok, [f.message for f in result.active]


def test_fsm001_suppression(lint_tree):
    result = lint_tree({
        "repro/fleet/store.py": STORE,
        "repro/fleet/dispatcher.py": '''
            def run(store, trial_id):
                # statlint: disable=FSM001 (migration shim)
                store.transition(trial_id, "running")
        ''',
    }, FSM1)
    assert result.ok
    assert len(result.suppressed) == 1


def test_declared_state_missing_from_the_graph(lint_tree):
    store = STORE.replace("        LOST: (),\n", "")
    result = lint_tree({
        "repro/fleet/store.py": store,
        "repro/fleet/dispatcher.py": DISPATCHER_CLEAN,
    }, FSM2)
    messages = [f.message for f in result.active]
    assert any("'lost' has no entry in the transition graph" in m
               for m in messages), messages
    assert all(f.path.endswith("store.py") for f in result.active)


def test_unreachable_state(lint_tree):
    store = STORE.replace(
        'LOST = "lost"', 'LOST = "lost"\n    LIMBO = "limbo"'
    ).replace(
        "TRIAL_STATES = (PENDING, RUNNING, DONE, LOST)",
        "TRIAL_STATES = (PENDING, RUNNING, DONE, LOST, LIMBO)"
    ).replace("        LOST: (),", "        LOST: (),\n        LIMBO: (),")
    result = lint_tree({
        "repro/fleet/store.py": store,
        "repro/fleet/dispatcher.py": DISPATCHER_CLEAN,
    }, FSM2)
    messages = [f.message for f in result.active]
    assert any("'limbo' is unreachable from the initial state 'pending'"
               in m for m in messages), messages


def test_never_entered_state(lint_tree):
    """No call site anywhere moves a trial into 'lost'."""
    dispatcher = '''
        from repro.fleet.store import RUNNING, DONE

        def run(store, trial_id):
            store.transition(trial_id, RUNNING)
            store.transition(trial_id, DONE)
    '''
    result = lint_tree({
        "repro/fleet/store.py": STORE,
        "repro/fleet/dispatcher.py": dispatcher,
    }, FSM2)
    (finding,) = result.active
    assert "'lost' is declared but no call site" in finding.message


def test_unknown_state_argument_disables_never_entered_checks(lint_tree):
    """A site passing a computed state could enter anything; FSM002
    must not guess at never-entered states then."""
    dispatcher = '''
        from repro.fleet.store import RUNNING

        def run(store, trial_id, status_from_wire):
            store.transition(trial_id, RUNNING)
            store.transition(trial_id, status_from_wire)
    '''
    result = lint_tree({
        "repro/fleet/store.py": STORE,
        "repro/fleet/dispatcher.py": dispatcher,
    }, FSM2)
    assert result.ok, [f.message for f in result.active]
