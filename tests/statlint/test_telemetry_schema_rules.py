"""Golden tests for the whole-program telemetry rules (TEL101–TEL103).

The fixture trees declare a real ``EVENT_SCHEMA``/``make_event`` pair
and emit through wrapper layers, so the tests exercise the forwarder
fixpoint (emit sites two hops from ``make_event``), injected-field
accounting, and the never-guess rule for non-literal kinds.
"""

from repro.statlint import LintConfig

from lint_helpers import rules_fired

EVENTS = '''
    EVENT_SCHEMA = {
        "trial_start": {"trial": "int", "seed": "int"},
        "trial_finish": {"trial": "int", "status": "str"},
    }


    def make_event(kind, t, instance=-1, **payload):
        return {"kind": kind, "t": t, "instance": instance, **payload}
'''

TEL = LintConfig(enable=("TEL101", "TEL102", "TEL103"))


def test_clean_emits_through_a_forwarder(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def _emit(kind, **payload):
                return make_event(kind, 0.0, **payload)

            def start(tid):
                _emit("trial_start", trial=tid, seed=1)
        ''',
    }, TEL)
    assert result.ok, [f.message for f in result.active]


def test_unknown_kind_through_a_forwarder(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def _emit(kind, **payload):
                return make_event(kind, 0.0, **payload)

            def start(tid):
                _emit("trial_begin", trial=tid, seed=1)
        ''',
    }, TEL)
    (finding,) = result.active
    assert finding.rule == "TEL101"
    assert "'trial_begin' is not declared" in finding.message
    assert finding.path.endswith("app.py")


def test_unknown_payload_field(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def finish(tid):
                make_event("trial_finish", 0.0, trial=tid, outcome="ok")
        ''',
    }, TEL)
    rules = rules_fired(result)
    assert "TEL102" in rules
    messages = [f.message for f in result.active]
    assert any("no field 'outcome'" in m for m in messages), messages


def test_literal_emit_missing_a_field(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def finish(tid):
                make_event("trial_finish", 0.0, trial=tid)
        ''',
    }, TEL)
    (finding,) = result.active
    assert finding.rule == "TEL103"
    assert "omits required field(s) 'status'" in finding.message


def test_forwarder_injected_fields_are_credited(lint_tree):
    """A wrapper adding trial= downstream satisfies TEL103 for its
    callers."""
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def _emit_trial(kind, tid, **payload):
                return make_event(kind, 0.0, trial=tid, **payload)

            def finish(tid):
                _emit_trial("trial_finish", tid, status="ok")
        ''',
    }, TEL)
    assert result.ok, [f.message for f in result.active]


def test_star_expansion_sites_skip_tel103(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def finish(tid, extra):
                make_event("trial_finish", 0.0, trial=tid, **extra)
        ''',
    }, TEL)
    assert result.ok, [f.message for f in result.active]


def test_non_literal_kind_is_never_guessed(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def relay(kind_from_wire, tid):
                make_event(kind_from_wire, 0.0, trial=tid)
        ''',
    }, TEL)
    assert result.ok


def test_conditional_kind_with_single_value_checked(lint_tree):
    """A kind joined from identical branches stays statically known."""
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def finish(tid, crashed):
                status = "crash" if crashed else "ok"
                make_event("trial_finish", 0.0, trial=tid,
                           status=status)
        ''',
    }, TEL)
    assert result.ok, [f.message for f in result.active]


def test_tel_suppression(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def finish(tid):
                # statlint: disable=TEL103 (status patched downstream)
                make_event("trial_finish", 0.0, trial=tid)
        ''',
    }, TEL)
    assert result.ok
    assert len(result.suppressed) == 1


def test_fixed_emit_passes(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/fleet/app.py": '''
            from repro.telemetry.events import make_event

            def finish(tid):
                make_event("trial_finish", 0.0, trial=tid, status="ok")
        ''',
    }, TEL)
    assert result.ok
