"""Baseline-ratchet, incremental-cache, and exit-code contract tests.

The CLI contract under test::

    0  clean (or nothing beyond the baseline)
    1  findings, no baseline in play
    2  new findings versus the baseline — the ratchet tripped
    3  usage or configuration error

plus the cache semantics: unchanged files replay their cached
file-rule findings, any change reruns project rules, and a config
change invalidates the cache wholesale.
"""

import json
import textwrap

import pytest

from repro.statlint import LintConfig, lint_paths
from repro.statlint.baseline import Baseline, BaselineError, fingerprint
from repro.statlint.cache import CACHE_FILENAME, LintCache
from repro.statlint.cli import main
from repro.statlint.findings import Finding

VIOLATION = "import time\nstart = time.time()\n"
CLEAN = "def f():\n    return 1\n"


@pytest.fixture
def tree(tmp_path):
    """A tiny project: pyproject + src/app.py with one DET001 hit."""
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent('''
        [tool.statlint]
        enable = ["DET001"]
    '''))
    src = tmp_path / "src"
    src.mkdir()
    (src / "app.py").write_text(VIOLATION)
    return tmp_path


def run(tree, *extra):
    return main(["--config", str(tree / "pyproject.toml"),
                 str(tree / "src"), *extra])


# -- exit codes --------------------------------------------------------


def test_findings_without_baseline_exit_1(tree, capsys):
    assert run(tree) == 1
    assert "1 finding(s)" in capsys.readouterr().out


def test_clean_tree_exits_0(tree, capsys):
    (tree / "src" / "app.py").write_text(CLEAN)
    assert run(tree) == 0


def test_update_baseline_then_rerun_exits_0(tree, capsys):
    baseline = tree / "baseline.json"
    assert run(tree, "--baseline", str(baseline),
               "--update-baseline") == 0
    data = json.loads(baseline.read_text())
    assert data["version"] == 1
    assert list(data["fingerprints"].values()) == [1]
    (key,) = data["fingerprints"]
    assert key.startswith("src/app.py::DET001::")

    capsys.readouterr()
    assert run(tree, "--baseline", str(baseline)) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s), 1 grandfathered" in out
    assert "(baseline)" in out


def test_new_finding_beyond_baseline_exits_2(tree, capsys):
    baseline = tree / "baseline.json"
    run(tree, "--baseline", str(baseline), "--update-baseline")
    (tree / "src" / "extra.py").write_text(VIOLATION)
    capsys.readouterr()
    assert run(tree, "--baseline", str(baseline)) == 2
    assert "1 new finding(s), 1 grandfathered" in capsys.readouterr().out


def test_fixing_the_finding_leaves_a_stale_baseline_harmless(tree):
    baseline = tree / "baseline.json"
    run(tree, "--baseline", str(baseline), "--update-baseline")
    (tree / "src" / "app.py").write_text(CLEAN)
    assert run(tree, "--baseline", str(baseline)) == 0


def test_missing_baseline_file_is_an_empty_baseline(tree, capsys):
    assert run(tree, "--baseline", str(tree / "nope.json")) == 2
    assert "1 new finding(s), 0 grandfathered" in capsys.readouterr().out


def test_corrupt_baseline_exits_3(tree, capsys):
    bad = tree / "bad.json"
    bad.write_text("{not json")
    assert run(tree, "--baseline", str(bad)) == 3
    assert "unreadable baseline" in capsys.readouterr().err


def test_update_baseline_requires_baseline_path(tree, capsys):
    assert run(tree, "--update-baseline") == 3
    assert "--update-baseline requires --baseline" in \
        capsys.readouterr().err


def test_baseline_budget_counts_duplicates():
    """A baseline entry of 1 covers one of two identical findings."""
    finding = Finding(path="a.py", line=3, col=0, rule="DET001",
                      message="same message")
    twin = Finding(path="a.py", line=9, col=0, rule="DET001",
                   message="same message")
    baseline = Baseline(counts={fingerprint(finding): 1})
    applied = baseline.apply([finding, twin])
    assert [f.baselined for f in applied] == [True, False]


def test_baseline_rejects_bad_counts(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps(
        {"version": 1, "fingerprints": {"x::DET001::m": 0}}))
    with pytest.raises(BaselineError):
        Baseline.load(path)


# -- sarif -------------------------------------------------------------


def test_sarif_baseline_states(tree, capsys):
    baseline = tree / "baseline.json"
    run(tree, "--baseline", str(baseline), "--update-baseline")
    (tree / "src" / "extra.py").write_text(VIOLATION)
    capsys.readouterr()
    code = run(tree, "--baseline", str(baseline), "--format", "sarif")
    report = json.loads(capsys.readouterr().out)
    assert code == 2
    states = sorted(r["baselineState"]
                    for r in report["runs"][0]["results"])
    assert states == ["new", "unchanged"]


def test_sarif_catalog_levels_and_suppressions(tree, capsys):
    (tree / "src" / "app.py").write_text(
        "import time\n"
        "start = time.time()  # statlint: disable=DET001 (probe)\n")
    code = run(tree, "--format", "sarif")
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    run_obj = report["runs"][0]
    levels = {r["id"]: r["defaultConfiguration"]["level"]
              for r in run_obj["tool"]["driver"]["rules"]}
    assert levels["NUM104"] == "warning"
    assert levels["DET001"] == "error"
    # Suppressed findings ship with an inSource suppression record.
    (result,) = run_obj["results"]
    assert result["suppressions"] == [{"kind": "inSource"}]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/app.py"
    assert location["region"]["startLine"] == 2


# -- incremental cache -------------------------------------------------


def test_changed_only_writes_and_reuses_the_cache(tree, capsys):
    assert run(tree, "--changed-only") == 1
    cache_path = tree / CACHE_FILENAME
    assert cache_path.is_file()
    data = json.loads(cache_path.read_text())
    assert "src/app.py" in data["files"]

    # Unchanged rerun: same outcome, served from the cache.
    capsys.readouterr()
    assert run(tree, "--changed-only") == 1
    assert "1 finding(s)" in capsys.readouterr().out


def test_cached_file_findings_are_replayed_verbatim(tree):
    """Prove reuse actually happens: forge a finding into the cache
    entry of an unchanged file and watch it come back out."""
    config = LintConfig(enable=("DET001",))
    cache = LintCache()
    lint_paths([tree / "src"], config, root=tree, cache=cache)

    forged = Finding(path="src/app.py", line=99, col=0, rule="DET001",
                     message="forged cache entry")
    entry = cache.files["src/app.py"]
    entry["findings"].append(forged.as_dict())

    result = lint_paths([tree / "src"], config, root=tree, cache=cache)
    assert any(f.message == "forged cache entry"
               for f in result.findings)


def test_content_change_invalidates_one_file(tree):
    config = LintConfig(enable=("DET001",))
    cache = LintCache()
    lint_paths([tree / "src"], config, root=tree, cache=cache)
    entry = cache.files["src/app.py"]
    entry["findings"].append(Finding(
        path="src/app.py", line=99, col=0, rule="DET001",
        message="forged cache entry").as_dict())

    (tree / "src" / "app.py").write_text(CLEAN)
    result = lint_paths([tree / "src"], config, root=tree, cache=cache)
    assert result.ok  # re-ran for real: no forged finding, no DET001
    assert cache.files["src/app.py"]["findings"] == []


def test_config_change_invalidates_the_whole_cache(tree):
    config = LintConfig(enable=("DET001",))
    cache = LintCache()
    lint_paths([tree / "src"], config, root=tree, cache=cache)
    assert cache.valid_for(config)
    retuned = LintConfig(enable=("DET001", "DET002"))
    assert not cache.valid_for(retuned)

    cache.files["src/app.py"]["findings"].append(Finding(
        path="src/app.py", line=99, col=0, rule="DET001",
        message="forged cache entry").as_dict())
    result = lint_paths([tree / "src"], retuned, root=tree, cache=cache)
    assert not any(f.message == "forged cache entry"
                   for f in result.findings)
    assert cache.valid_for(retuned)  # rekeyed after the run


def test_deleted_files_are_pruned_from_the_cache(tree):
    config = LintConfig(enable=("DET001",))
    (tree / "src" / "extra.py").write_text(CLEAN)
    cache = LintCache()
    lint_paths([tree / "src"], config, root=tree, cache=cache)
    assert set(cache.files) == {"src/app.py", "src/extra.py"}

    (tree / "src" / "extra.py").unlink()
    lint_paths([tree / "src"], config, root=tree, cache=cache)
    assert set(cache.files) == {"src/app.py"}


def test_corrupt_cache_degrades_to_empty(tmp_path):
    path = tmp_path / CACHE_FILENAME
    path.write_text("{not json")
    cache = LintCache.load(path)
    assert cache.files == {} and cache.config_key == ""
