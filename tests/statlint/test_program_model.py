"""Unit tests for the whole-program layers: symbol table, call graph,
and intraprocedural dataflow.

These drive the engine's :class:`Project` accessors over small
synthetic trees written to disk, exercising the exact code path rules
use (collection → symbols → callgraph → dataflow), not hand-built
ASTs.
"""

import textwrap

import pytest

from repro.statlint import LintConfig
from repro.statlint.engine import Project, collect_files


@pytest.fixture
def build_project(tmp_path):
    def run(files):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        collected, errors = collect_files(
            [tmp_path], LintConfig(), tmp_path)
        assert not errors
        return Project(collected)
    return run


# -- symbol table ------------------------------------------------------


def test_constant_resolves_across_an_import(build_project):
    project = build_project({
        "pkg/__init__.py": "",
        "pkg/store.py": 'PENDING = "pending"\n',
        "pkg/user.py": "from pkg.store import PENDING\n",
    })
    known, value = project.symbols.constant_value("pkg.user", "PENDING")
    assert known and value == "pending"


def test_constant_resolves_through_a_reexport_chain(build_project):
    project = build_project({
        "pkg/__init__.py": "from .store import PENDING\n",
        "pkg/store.py": 'PENDING = "pending"\n',
        "pkg/user.py": "from pkg import PENDING\n",
    })
    known, value = project.symbols.constant_value("pkg.user", "PENDING")
    assert known and value == "pending"


def test_relative_import_is_absolutized(build_project):
    project = build_project({
        "pkg/__init__.py": "",
        "pkg/store.py": "LIMIT = 7\n",
        "pkg/user.py": "from .store import LIMIT as CAP\n",
    })
    known, value = project.symbols.constant_value("pkg.user", "CAP")
    assert known and value == 7


def test_dict_literal_built_from_bound_names_evaluates(build_project):
    project = build_project({
        "m.py": '''
            A = "a"
            B = "b"
            GRAPH = {A: (B,), B: ()}
        ''',
    })
    known, value = project.symbols.constant_value("m", "GRAPH")
    assert known and value == {"a": ("b",), "b": ()}


def test_mutable_globals_are_indexed(build_project):
    project = build_project({
        "m.py": '''
            REGISTRY = {}
            ITEMS = []
            FROZEN = ("a",)
            MADE = dict()
        ''',
    })
    syms = project.symbols.module("m")
    assert set(syms.mutable_globals) == {"REGISTRY", "ITEMS", "MADE"}


def test_src_prefix_is_stripped_from_module_names(build_project):
    project = build_project({
        "src/pkg/__init__.py": "",
        "src/pkg/mod.py": "X = 1\n",
    })
    assert "pkg.mod" in project.symbols.modules


# -- call graph --------------------------------------------------------


def test_direct_call_edge(build_project):
    project = build_project({
        "m.py": '''
            def callee():
                pass

            def caller():
                callee()
        ''',
    })
    assert "m.callee" in project.callgraph.callees("m.caller")


def test_cross_module_call_edge_through_import(build_project):
    project = build_project({
        "pkg/__init__.py": "",
        "pkg/lib.py": "def helper():\n    pass\n",
        "pkg/app.py": '''
            from pkg.lib import helper

            def run():
                helper()
        ''',
    })
    assert "pkg.lib.helper" in project.callgraph.callees("pkg.app.run")


def test_self_method_call_binds_to_enclosing_class(build_project):
    project = build_project({
        "m.py": '''
            class Worker:
                def step(self):
                    self.finish()

                def finish(self):
                    pass
        ''',
    })
    assert "m.Worker.finish" in project.callgraph.callees("m.Worker.step")


def test_unresolved_method_call_binds_by_name_to_all_classes(
        build_project):
    project = build_project({
        "m.py": '''
            class A:
                def emit(self):
                    pass

            class B:
                def emit(self):
                    pass

            def fan(sink):
                sink.emit()
        ''',
    })
    callees = project.callgraph.callees("m.fan")
    assert {"m.A.emit", "m.B.emit"} <= callees


def test_constructor_call_edges_to_init(build_project):
    project = build_project({
        "m.py": '''
            class Thing:
                def __init__(self):
                    pass

            def make():
                return Thing()
        ''',
    })
    assert "m.Thing.__init__" in project.callgraph.callees("m.make")


def test_function_reference_argument_counts_as_a_call(build_project):
    """``Process(target=f)`` / ``functools.partial(f)`` style edges."""
    project = build_project({
        "m.py": '''
            import functools
            from multiprocessing import Process

            def worker():
                pass

            def tick():
                pass

            def spawn():
                Process(target=worker).start()
                return functools.partial(tick, 1)
        ''',
    })
    callees = project.callgraph.callees("m.spawn")
    assert {"m.worker", "m.tick"} <= callees
    reach = project.callgraph.reachable(["m.spawn"])
    assert "m.worker" in reach and "m.tick" in reach


def test_module_body_calls_are_attributed_to_module_node(build_project):
    project = build_project({
        "m.py": '''
            def setup():
                pass

            setup()
        ''',
    })
    assert "m.setup" in project.callgraph.callees("m.<module>")


# -- dataflow ----------------------------------------------------------


def _flow(project, relpath, func_name):
    source = project.find(relpath)
    for node in source.tree.body:
        if getattr(node, "name", None) == func_name:
            return project.dataflow_for(source, node), node
    raise AssertionError(f"no function {func_name} in {relpath}")


def _return_value(flow, func):
    import ast
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            return flow.value_of(node.value)
    raise AssertionError("no return")


@pytest.mark.parametrize("expr,dtype", [
    ("np.zeros(8, dtype=np.uint8)", "uint8"),
    ("np.zeros(8)", "float64"),
    ("np.arange(8, dtype=np.int64)", "int64"),
    ("np.zeros(8, dtype=np.uint8).astype(np.int64)", "int64"),
    ("np.zeros(8, dtype=np.uint8) + np.zeros(8, dtype=np.int64)",
     "int64"),
    ("np.zeros(8, dtype=np.uint8) + 1", "uint8"),      # NEP 50
    ("np.zeros(8, dtype=np.uint8) + 1.5", "float64"),
    ("np.bincount(np.arange(4), weights=np.arange(4))", "float64"),
    ("np.zeros(8, dtype=np.uint8).sum()", "intp"),
    ("np.zeros(8, dtype=np.uint8).sum(dtype=np.int64)", "int64"),
    ("np.argsort(np.zeros(8, dtype=np.uint8))", "intp"),
    ("np.zeros(8, dtype=np.uint16)[2:5]", "uint16"),
])
def test_dtype_inference(build_project, expr, dtype):
    project = build_project({
        "m.py": f"import numpy as np\n\ndef f():\n"
                f"    return {expr}\n",
    })
    flow, func = _flow(project, "m.py", "f")
    assert _return_value(flow, func).dtype == dtype


def test_constants_join_across_conditional(build_project):
    project = build_project({
        "m.py": '''
            A = "lost"
            B = "quarantined"

            def f(q):
                state = B if q else A
                return state
        ''',
    })
    flow, func = _flow(project, "m.py", "f")
    assert _return_value(flow, func).consts == {"lost", "quarantined"}


def test_constants_join_across_if_statement(build_project):
    project = build_project({
        "m.py": '''
            def f(q):
                state = "a"
                if q:
                    state = "b"
                return state
        ''',
    })
    flow, func = _flow(project, "m.py", "f")
    assert _return_value(flow, func).consts == {"a", "b"}


def test_constant_set_degrades_beyond_the_bound(build_project):
    branches = "\n".join(
        f"                elif k == {i}:\n"
        f"                    state = \"s{i}\""
        for i in range(2, 8))
    project = build_project({
        "m.py": f'''
            def f(k):
                if k == 1:
                    state = "s1"
{branches}
                else:
                    state = "s0"
                return state
        ''',
    })
    flow, func = _flow(project, "m.py", "f")
    assert _return_value(flow, func).consts is None


def test_name_load_falls_back_to_project_constants(build_project):
    project = build_project({
        "pkg/__init__.py": "",
        "pkg/store.py": 'DONE = "done"\n',
        "pkg/app.py": '''
            from pkg.store import DONE

            def f():
                return DONE
        ''',
    })
    flow, func = _flow(project, "pkg/app.py", "f")
    assert _return_value(flow, func).const == "done"
