"""Fixtures for the statlint tests: lint small synthetic trees.

Rule tests write fixture snippets into ``tmp_path`` and run the real
engine over them, so they exercise file collection, import resolution
and suppression handling — not just the rule visitors in isolation.
"""

import textwrap

import pytest

from repro.statlint import LintConfig, lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""

    def run(files, config=None):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return lint_paths([tmp_path], config or LintConfig(),
                          root=tmp_path)

    return run
