"""Golden tests for TEL104: aggregator coverage of EVENT_SCHEMA."""

from repro.statlint import LintConfig

from lint_helpers import rules_fired

EVENTS = '''
    EVENT_SCHEMA = {
        "trial_start": {"trial": "int", "seed": "int"},
        "trial_finish": {"trial": "int", "status": "str"},
        "heartbeat": {"t_mono": "float"},
    }


    def make_event(kind, t, instance=-1, **payload):
        return {"kind": kind, "t": t, "instance": instance, **payload}
'''

AGG_PATH = "repro/telemetry/serve/aggregator.py"
TEL104 = LintConfig(enable=("TEL104",))


def _aggregator(body, ignored='("heartbeat",)'):
    return f'''
    IGNORED_KINDS = {ignored}


    class TelemetryAggregator:
{body}
'''


def test_full_coverage_is_clean(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        AGG_PATH: _aggregator('''
        def _on_trial_start(self, event):
            pass

        def _on_trial_finish(self, event):
            pass
'''),
    }, TEL104)
    assert result.ok, [f.message for f in result.active]


def test_unconsumed_kind_fires(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        AGG_PATH: _aggregator('''
        def _on_trial_start(self, event):
            pass
'''),
    }, TEL104)
    (finding,) = result.active
    assert finding.rule == "TEL104"
    assert "'trial_finish' is neither handled" in finding.message
    assert finding.path.endswith("aggregator.py")


def test_kind_both_handled_and_ignored_fires(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        AGG_PATH: _aggregator('''
        def _on_trial_start(self, event):
            pass

        def _on_trial_finish(self, event):
            pass

        def _on_heartbeat(self, event):
            pass
'''),
    }, TEL104)
    (finding,) = result.active
    assert "both handled" in finding.message
    assert "_on_heartbeat" in finding.message


def test_stale_handler_fires(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        AGG_PATH: _aggregator('''
        def _on_trial_start(self, event):
            pass

        def _on_trial_finish(self, event):
            pass

        def _on_trial_abort(self, event):
            pass
'''),
    }, TEL104)
    (finding,) = result.active
    assert ("handler _on_trial_abort matches no EVENT_SCHEMA kind"
            in finding.message)


def test_stale_ignore_entry_fires(lint_tree):
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        AGG_PATH: _aggregator('''
        def _on_trial_start(self, event):
            pass

        def _on_trial_finish(self, event):
            pass
''', ignored='("heartbeat", "old_kind")'),
    }, TEL104)
    (finding,) = result.active
    assert "'old_kind' matches no EVENT_SCHEMA kind" in finding.message


def test_no_aggregator_module_is_silent(lint_tree):
    # Projects without the serve subsystem (or with a relocated
    # aggregator_path) must not fail TEL104.
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
    }, TEL104)
    assert result.ok


def test_rule_respects_configured_path(lint_tree):
    config = LintConfig(enable=("TEL104",),
                        aggregator_path="repro/custom/agg.py")
    result = lint_tree({
        "repro/telemetry/events.py": EVENTS,
        "repro/custom/agg.py": _aggregator('''
        def _on_trial_start(self, event):
            pass
'''),
    }, config)
    assert "TEL104" in rules_fired(result)
