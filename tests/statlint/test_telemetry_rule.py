"""TEL001: the telemetry subsystem's stricter determinism bar.

Fires on wall clocks (including the walltime shim, which general code
may use), unseeded randomness, non-canonical JSON encoding, and
unordered iteration — but only inside ``telemetry-paths``; identical
code elsewhere is judged by the general rules instead.
"""

from repro.statlint import LintConfig

from lint_helpers import rules_fired


def only_tel(result):
    return [f for f in result.active if f.rule == "TEL001"]


class TestScope:
    def test_quiet_outside_telemetry_paths(self, lint_tree):
        result = lint_tree({"repro/analysis/mod.py": """\
            import json

            def enc(d):
                return json.dumps(d)
            """})
        assert "TEL001" not in rules_fired(result)

    def test_custom_paths_config(self, lint_tree):
        result = lint_tree(
            {"obs/mod.py": """\
                import json

                def enc(d):
                    return json.dumps(d)
                """},
            LintConfig(enable=("TEL001",), telemetry_paths=("obs/*",)))
        assert rules_fired(result) == ["TEL001"]


class TestWallClock:
    def test_fires_on_time_time(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            import time

            def stamp():
                return time.time()
            """})
        findings = only_tel(result)
        assert len(findings) == 1
        assert "virtual clock" in findings[0].message

    def test_fires_on_walltime_shim(self, lint_tree):
        # General code may use the shim; telemetry may not read host
        # time at all, so even the allowlisted entry point is flagged.
        result = lint_tree({"repro/telemetry/mod.py": """\
            from repro.core.walltime import wall_now

            def stamp():
                return wall_now()
            """})
        assert len(only_tel(result)) == 1


class TestRandomness:
    def test_fires_on_stdlib_random(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            import random

            def jitter():
                return random.random()
            """})
        assert len(only_tel(result)) == 1

    def test_fires_on_unseeded_default_rng(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            import numpy as np

            def rng():
                return np.random.default_rng()
            """})
        assert len(only_tel(result)) == 1

    def test_seeded_rng_passes(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)
            """})
        assert only_tel(result) == []


class TestCanonicalJson:
    def test_fires_on_dumps_without_sort_keys(self, lint_tree):
        result = lint_tree({"repro/telemetry/sinks.py": """\
            import json

            def enc(event):
                return json.dumps(event)
            """})
        findings = only_tel(result)
        assert len(findings) == 1
        assert "sort_keys" in findings[0].message

    def test_fires_on_sort_keys_false(self, lint_tree):
        result = lint_tree({"repro/telemetry/sinks.py": """\
            import json

            def enc(event):
                return json.dumps(event, sort_keys=False)
            """})
        assert len(only_tel(result)) == 1

    def test_sorted_encoding_passes(self, lint_tree):
        result = lint_tree({"repro/telemetry/sinks.py": """\
            import json

            def enc(event):
                return json.dumps(event, sort_keys=True,
                                  separators=(",", ":"))
            """})
        assert only_tel(result) == []


class TestUnorderedIteration:
    def test_fires_on_set_iteration(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            def names(events):
                return [e for e in set(events)]
            """})
        assert len(only_tel(result)) == 1

    def test_fires_on_dict_keys_loop(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            def lines(stats):
                out = []
                for key in stats.keys():
                    out.append(key)
                return out
            """})
        assert len(only_tel(result)) == 1

    def test_sorted_iteration_passes(self, lint_tree):
        result = lint_tree({"repro/telemetry/mod.py": """\
            def lines(stats):
                return [key for key in sorted(stats)]
            """})
        assert only_tel(result) == []


class TestRealTree:
    def test_shipping_telemetry_package_is_clean(self):
        from pathlib import Path

        from repro.statlint import lint_paths
        from repro.statlint.config import find_pyproject, load_config

        from lint_helpers import REPO_ROOT

        src = REPO_ROOT / "src"
        config = load_config(find_pyproject(src))
        result = lint_paths([src / "repro" / "telemetry"], config,
                            root=src)
        assert [f for f in result.active if f.rule == "TEL001"] == []
