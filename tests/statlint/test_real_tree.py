"""Acceptance: the linter over the *real* repository tree.

The shipped tree must lint clean, and seeding a violation — removing
one field from the real ``snapshot_campaign`` — must turn the run red.
These tests drive the CLI entry point end to end (config discovery,
exit codes, reporting) rather than calling the engine directly.
"""

import json
import shutil

import pytest

from repro.statlint import load_config
from repro.statlint.cli import main

from lint_helpers import REPO_ROOT

SRC = REPO_ROOT / "src"


@pytest.fixture(scope="module")
def repo_config():
    return load_config(REPO_ROOT / "pyproject.toml")


def test_shipped_tree_is_clean(capsys):
    paths = [str(REPO_ROOT / p) for p in ("src", "benchmarks", "examples")
             if (REPO_ROOT / p).is_dir()]
    code = main(["--config", str(REPO_ROOT / "pyproject.toml"), *paths])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_shipped_tree_json_report(capsys):
    code = main(["--config", str(REPO_ROOT / "pyproject.toml"),
                 "--format", "json", str(SRC / "repro" / "fuzzer")])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["ok"] is True
    assert report["n_active"] == 0
    assert report["n_files"] > 5


@pytest.fixture
def mutated_tree(tmp_path):
    """A copy of the lint-relevant sources with one snapshot field
    (``execs``) deliberately dropped from ``snapshot_campaign``."""
    root = tmp_path / "tree"
    shutil.copytree(SRC / "repro" / "fuzzer", root / "repro" / "fuzzer")
    shutil.copytree(SRC / "repro" / "experiments",
                    root / "repro" / "experiments")
    checkpoint = root / "repro" / "fuzzer" / "checkpoint.py"
    source = checkpoint.read_text()
    mutated = source.replace("        execs=campaign.execs,\n", "")
    assert mutated != source, "snapshot no longer reads campaign.execs"
    checkpoint.write_text(mutated)
    # The real [tool.statlint] table governs the mutated copy too.
    shutil.copy(REPO_ROOT / "pyproject.toml", tmp_path / "pyproject.toml")
    return tmp_path


def test_omitted_snapshot_field_fails_the_lint(mutated_tree, capsys):
    code = main(["--config", str(mutated_tree / "pyproject.toml"),
                 str(mutated_tree / "tree")])
    out = capsys.readouterr().out
    assert code == 1
    assert "SNAP001" in out
    assert "'self.execs'" in out


def test_seeded_wallclock_violation_fails_the_lint(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstart = time.time()\n")
    code = main(["--config", str(REPO_ROOT / "pyproject.toml"),
                 str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out


def test_list_rules_catalog(capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("DET001", "DET002", "DET003", "ERR001", "NUM001",
                    "SNAP001", "EXP001", "FSM001", "FSM002", "NUM101",
                    "NUM102", "NUM103", "NUM104", "TEL101", "TEL102",
                    "TEL103", "CONC001"):
        assert rule_id in out


def test_missing_path_is_a_usage_error(capsys):
    code = main(["--config", str(REPO_ROOT / "pyproject.toml"),
                 str(REPO_ROOT / "no-such-dir")])
    assert code == 3
    assert "no such path" in capsys.readouterr().err


def test_bad_config_key_is_a_config_error(tmp_path, capsys):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.statlint]\nno-such-option = true\n")
    (tmp_path / "empty.py").write_text("")
    code = main(["--config", str(pyproject), str(tmp_path / "empty.py")])
    assert code == 3
    assert "bad configuration" in capsys.readouterr().err


def test_repo_config_lists_every_rule(repo_config):
    assert set(repo_config.enable) == {
        "DET001", "DET002", "DET003", "TEL001", "ERR001", "ERR002",
        "NUM001", "SNAP001", "EXP001",
        "FSM001", "FSM002", "NUM101", "NUM102", "NUM103", "NUM104",
        "TEL101", "TEL102", "TEL103", "TEL104", "CONC001"}
    assert "repro/core/walltime.py" in repo_config.wallclock_allow
    assert "repro/telemetry/*" in repo_config.telemetry_paths
    assert repo_config.store_path == "repro/fleet/store.py"
    assert "repro/core/*" in repo_config.num_hot_paths


def test_shipped_tree_is_clean_against_committed_baseline(capsys):
    """The acceptance contract: SARIF output, committed baseline, exit 0."""
    code = main(["--config", str(REPO_ROOT / "pyproject.toml"),
                 "--format", "sarif",
                 "--baseline", str(REPO_ROOT / ".statlint-baseline.json"),
                 str(SRC)])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    run = report["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"FSM001", "NUM101", "TEL102", "CONC001"} <= rule_ids
    # Every non-suppressed result must be baselined or absent; the
    # shipped tree has none.
    assert all(r["suppressions"] for r in run["results"])
