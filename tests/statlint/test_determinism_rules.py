"""DET001/DET002/DET003: each fires on a violation fixture, stays
quiet on the compliant variant, and is silenced by a suppression."""

from repro.statlint import LintConfig

from lint_helpers import rules_fired


class TestWallClock:
    def test_fires_on_time_time(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            def stamp():
                return time.time()
            """})
        assert rules_fired(result) == ["DET001"]
        (finding,) = result.active
        assert finding.line == 4
        assert "time.time" in finding.message

    def test_fires_on_datetime_now(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """})
        assert rules_fired(result) == ["DET001"]

    def test_fires_on_aliased_import(self, lint_tree):
        result = lint_tree({"mod.py": """\
            from time import perf_counter as pc

            def stamp():
                return pc()
            """})
        assert rules_fired(result) == ["DET001"]

    def test_allowlisted_shim_passes(self, lint_tree):
        result = lint_tree({"repro/core/walltime.py": """\
            import time

            def wall_now():
                return time.perf_counter()
            """})
        assert rules_fired(result) == []

    def test_local_name_time_is_not_flagged(self, lint_tree):
        # No `import time`: a local callable named `time` is fine.
        result = lint_tree({"mod.py": """\
            def run(time):
                return time.time()
            """})
        assert rules_fired(result) == []

    def test_suppression_silences(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            def stamp():
                return time.time()  # statlint: disable=DET001 (host-side)
            """})
        assert rules_fired(result) == []
        assert [f.rule for f in result.suppressed] == ["DET001"]


class TestUnseededRandom:
    def test_fires_on_stdlib_random(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import random

            def draw():
                return random.random()
            """})
        assert rules_fired(result) == ["DET002"]

    def test_fires_on_legacy_numpy_random(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            def draw():
                return np.random.rand(4)
            """})
        assert rules_fired(result) == ["DET002"]

    def test_fires_on_unseeded_default_rng(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            def make_rng():
                return np.random.default_rng()
            """})
        assert rules_fired(result) == ["DET002"]

    def test_fires_on_seed_none(self, lint_tree):
        result = lint_tree({"mod.py": """\
            from numpy.random import default_rng

            def make_rng():
                return default_rng(seed=None)
            """})
        assert rules_fired(result) == ["DET002"]

    def test_seeded_generator_passes(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 256, size=8)
            """})
        assert rules_fired(result) == []

    def test_suppression_silences(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import random

            def draw():
                # statlint: disable=DET002 (demo script, not a result path)
                return random.random()
            """})
        assert rules_fired(result) == []


class TestUnorderedIteration:
    CONFIG = LintConfig(det003_paths=("*/analysis/*",))

    def test_fires_on_set_iteration_in_output_path(self, lint_tree):
        result = lint_tree({"pkg/analysis/report.py": """\
            def render(names):
                for name in set(names):
                    print(name)
            """}, config=self.CONFIG)
        assert rules_fired(result) == ["DET003"]

    def test_fires_on_dict_keys_comprehension(self, lint_tree):
        result = lint_tree({"pkg/analysis/report.py": """\
            def render(table):
                return [table[k] for k in table.keys()]
            """}, config=self.CONFIG)
        assert rules_fired(result) == ["DET003"]

    def test_sorted_wrapping_passes(self, lint_tree):
        result = lint_tree({"pkg/analysis/report.py": """\
            def render(names):
                for name in sorted(set(names)):
                    print(name)
            """}, config=self.CONFIG)
        assert rules_fired(result) == []

    def test_non_output_modules_are_not_checked(self, lint_tree):
        result = lint_tree({"pkg/core/scratch.py": """\
            def consume(names):
                for name in set(names):
                    yield name
            """}, config=self.CONFIG)
        assert rules_fired(result) == []

    def test_suppression_silences(self, lint_tree):
        result = lint_tree({"pkg/analysis/report.py": """\
            def render(names):
                for name in set(names):  # statlint: disable=DET003 (order-free sink)
                    print(name)
            """}, config=self.CONFIG)
        assert rules_fired(result) == []
