"""Shared helpers for the statlint tests (importable without a
package: pytest adds this directory to sys.path for rootless tests)."""

from pathlib import Path

#: The repository root (tests/statlint/ is two levels down).
REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_fired(result):
    """Sorted active (unsuppressed) rule ids in a LintResult."""
    return sorted({f.rule for f in result.active})
