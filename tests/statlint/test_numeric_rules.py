"""Golden tests for the kernel dtype-stability rules (NUM101–NUM104).

The rules run dtype inference over ``num_hot_paths`` files only;
each case has a seeded violation, a suppressed variant, and a fixed
variant, plus the hot-path gating negative.
"""

from repro.statlint import LintConfig

from lint_helpers import rules_fired

NUM101 = LintConfig(enable=("NUM101",))
NUM102 = LintConfig(enable=("NUM102",))
NUM103 = LintConfig(enable=("NUM103",))
NUM104 = LintConfig(enable=("NUM104",))


def test_float_scalar_upcasts_narrow_array(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def decay(counts):
                m = np.zeros(64, dtype=np.uint8)
                return m * 0.5
        ''',
    }, NUM101)
    (finding,) = result.active
    assert finding.rule == "NUM101"
    assert "uint8 array silently upcast to float64" in finding.message


def test_bincount_with_weights_flagged(lint_tree):
    result = lint_tree({
        "repro/core/agg.py": '''
            import numpy as np

            def aggregate(keys, counts):
                return np.bincount(keys, weights=counts)
        ''',
    }, NUM101)
    (finding,) = result.active
    assert "accumulates in float64" in finding.message


def test_integral_math_passes_num101(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def decay(counts):
                m = np.zeros(64, dtype=np.uint8)
                return m.astype(np.int64) // 2
        ''',
    }, NUM101)
    assert result.ok


def test_small_int_reduction_without_dtype(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def total():
                m = np.zeros(64, dtype=np.uint16)
                return m.sum()
        ''',
    }, NUM102)
    (finding,) = result.active
    assert finding.rule == "NUM102"
    assert "sum() over a uint16 operand without dtype=" in finding.message


def test_numpy_function_form_reduction_flagged(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def total():
                m = np.zeros(64, dtype=np.uint8)
                return np.cumsum(m)
        ''',
    }, NUM102)
    (finding,) = result.active
    assert "cumsum() over a uint8 operand" in finding.message


def test_explicit_dtype_fixes_num102(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def total():
                m = np.zeros(64, dtype=np.uint16)
                return m.sum(dtype=np.int64)
        ''',
    }, NUM102)
    assert result.ok


def test_wide_operand_passes_num102(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def total():
                m = np.zeros(64, dtype=np.int64)
                return m.sum()
        ''',
    }, NUM102)
    assert result.ok


def test_narrow_arithmetic_flagged(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def bump(hits):
                m = np.zeros(64, dtype=np.uint8)
                return m + m
        ''',
    }, NUM103)
    (finding,) = result.active
    assert finding.rule == "NUM103"
    assert "arithmetic result stays uint8" in finding.message


def test_widened_arithmetic_fixes_num103(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def bump(hits):
                m = np.zeros(64, dtype=np.uint8)
                return m.astype(np.int64) + m
        ''',
    }, NUM103)
    assert result.ok


def test_redundant_astype_flagged_and_fix_accepted(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def copy_map():
                m = np.zeros(64, dtype=np.uint8)
                return m.astype(np.uint8)
        ''',
    }, NUM104)
    (finding,) = result.active
    assert finding.rule == "NUM104"
    assert "redundant copy" in finding.message

    # Same path, fixed source (the fixture overwrites in place).
    fixed = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def copy_map():
                m = np.zeros(64, dtype=np.uint8)
                return m.astype(np.uint8, copy=False)
        ''',
    }, NUM104)
    assert fixed.ok


def test_num104_is_a_warning(lint_tree):
    from repro.statlint.registry import RULES
    assert RULES["NUM104"].severity == "warning"
    assert RULES["NUM103"].severity == "error"


def test_hot_path_gating(lint_tree):
    """The same hazard outside num_hot_paths is presumed deliberate."""
    source = '''
        import numpy as np

        def decay(counts):
            m = np.zeros(64, dtype=np.uint8)
            return m * 0.5
    '''
    result = lint_tree({"repro/analysis/plots.py": source},
                       LintConfig(enable=("NUM101", "NUM102", "NUM103",
                                          "NUM104")))
    assert result.ok


def test_num_suppression(lint_tree):
    result = lint_tree({
        "repro/core/kernel.py": '''
            import numpy as np

            def decay(counts):
                m = np.zeros(64, dtype=np.uint8)
                # statlint: disable=NUM101 (decay is float by design)
                return m * 0.5
        ''',
    }, NUM101)
    assert result.ok
    assert len(result.suppressed) == 1
    assert rules_fired(result) == []
