"""Suppression-directive parsing and [tool.statlint] config loading."""

import pytest

from repro.statlint import LintConfig
from repro.statlint.config import config_from_table, path_matches
from repro.statlint.suppressions import SuppressionIndex

from lint_helpers import rules_fired


class TestSuppressionIndex:
    def test_same_line_directive(self):
        index = SuppressionIndex(
            "x = 1\ny = time.time()  # statlint: disable=DET001 (why)\n")
        assert index.is_suppressed("DET001", 2)
        assert not index.is_suppressed("DET001", 1)
        assert not index.is_suppressed("DET002", 2)

    def test_comment_only_line_covers_next_line(self):
        index = SuppressionIndex(
            "# statlint: disable=NUM001 (bounded)\ntotal = a + b\n")
        assert index.is_suppressed("NUM001", 1)
        assert index.is_suppressed("NUM001", 2)
        assert not index.is_suppressed("NUM001", 3)

    def test_trailing_directive_does_not_leak_to_next_line(self):
        index = SuppressionIndex(
            "y = time.time()  # statlint: disable=DET001\nz = 2\n")
        assert not index.is_suppressed("DET001", 2)

    def test_multiple_rules_and_case(self):
        index = SuppressionIndex(
            "pass  # statlint: disable=det001, NUM001\n")
        assert index.is_suppressed("DET001", 1)
        assert index.is_suppressed("num001", 1)
        assert not index.is_suppressed("ERR001", 1)

    def test_all_wildcard(self):
        index = SuppressionIndex("pass  # statlint: disable=all\n")
        assert index.is_suppressed("DET001", 1)
        assert index.is_suppressed("SNAP001", 1)

    def test_file_wide_directive(self):
        index = SuppressionIndex(
            "# statlint: disable-file=DET002\nimport random\n")
        assert index.is_suppressed("DET002", 40)

    def test_non_directive_comments_are_ignored(self):
        index = SuppressionIndex("# just a note about DET001\n")
        assert not index.is_suppressed("DET001", 1)


class TestEngineSuppression:
    def test_file_wide_suppression(self, lint_tree):
        result = lint_tree({"mod.py": """\
            # statlint: disable-file=DET002 (interactive demo)
            import random

            def a():
                return random.random()

            def b():
                return random.choice([1, 2])
            """})
        assert rules_fired(result) == []
        assert len(result.suppressed) == 2

    def test_suppressed_findings_keep_their_location(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            t = time.time()  # statlint: disable=DET001 (why)
            """})
        (finding,) = result.suppressed
        assert (finding.rule, finding.line) == ("DET001", 3)
        assert not result.active
        assert result.ok

    def test_syntax_error_is_an_unsuppressible_finding(self, lint_tree):
        result = lint_tree({"mod.py": """\
            # statlint: disable-file=all
            def broken(:
            """})
        assert rules_fired(result) == ["SYNTAX"]


class TestConfig:
    def test_defaults_enable_every_rule(self):
        config = LintConfig()
        assert config.rule_enabled("DET001")
        assert config.rule_enabled("ANYTHING")

    def test_enable_list_restricts(self):
        config = LintConfig(enable=("DET001",))
        assert config.rule_enabled("DET001")
        assert not config.rule_enabled("DET002")

    def test_kebab_and_snake_keys(self):
        config = config_from_table({
            "wallclock-allow": ["a.py"], "snapshot_exempt": ["x"]})
        assert config.wallclock_allow == ("a.py",)
        assert config.snapshot_exempt == ("x",)

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="no-such"):
            config_from_table({"no-such": 1})

    def test_scalar_string_becomes_tuple(self):
        config = config_from_table({"enable": "DET001"})
        assert config.enable == ("DET001",)

    def test_path_matches_at_any_depth(self):
        assert path_matches("src/repro/core/walltime.py",
                            ["repro/core/walltime.py"])
        assert path_matches("repro/core/walltime.py",
                            ["repro/core/walltime.py"])
        assert not path_matches("repro/core/clock.py",
                                ["repro/core/walltime.py"])
        assert path_matches("src/repro/analysis/tables.py",
                            ["*/analysis/*"])

    def test_exclude_skips_files(self, lint_tree):
        result = lint_tree({"skipme/mod.py": """\
            import time
            t = time.time()
            """}, config=LintConfig(exclude=("skipme/*",)))
        assert result.findings == []
        assert result.n_files == 0
