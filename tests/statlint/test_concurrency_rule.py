"""Golden tests for the fork-boundary rule (CONC001).

A module-level mutable container written from both dispatcher-side and
worker-side reachable code silently diverges under the process
backend. The fixture trees mirror the real fleet layout; one case
routes the worker-side write through a ``Process(target=...)``-style
function reference to prove reachability crosses the spawn boundary.
"""

from repro.statlint import LintConfig

CONC = LintConfig(enable=("CONC001",))

SHARED = '''
    SEEN = {}


    def note(key, value):
        SEEN[key] = value
'''


def test_both_sides_writing_a_global_is_flagged(lint_tree):
    result = lint_tree({
        "repro/fleet/shared.py": SHARED,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.shared import note

            def dispatch(tid):
                note(tid, "dispatched")
        ''',
        "repro/fleet/workers.py": '''
            from repro.fleet.shared import note

            def execute_trial(tid):
                note(tid, "done")
        ''',
    }, CONC)
    (finding,) = result.active
    assert finding.rule == "CONC001"
    assert finding.path.endswith("shared.py")
    assert "mutable 'SEEN' is written from dispatcher-side" in \
        finding.message


def test_reachability_crosses_a_spawn_target_reference(lint_tree):
    """The worker-side write happens in a function only ever passed as
    Process(target=...); the function-reference edge must carry it."""
    result = lint_tree({
        "repro/fleet/shared.py": SHARED,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.shared import SEEN

            def dispatch(tid):
                SEEN[tid] = "dispatched"
        ''',
        "repro/fleet/workers.py": '''
            from multiprocessing import Process
            from repro.fleet.shared import note

            def _child(tid):
                note(tid, "done")

            def execute_trial(tid):
                Process(target=_child, args=(tid,)).start()
        ''',
    }, CONC)
    (finding,) = result.active
    assert "'SEEN'" in finding.message


def test_single_sided_writes_pass(lint_tree):
    result = lint_tree({
        "repro/fleet/shared.py": SHARED,
        "repro/fleet/dispatcher.py": '''
            def dispatch(tid):
                return tid
        ''',
        "repro/fleet/workers.py": '''
            from repro.fleet.shared import note

            def execute_trial(tid):
                note(tid, "done")
        ''',
    }, CONC)
    assert result.ok, [f.message for f in result.active]


def test_local_shadowing_is_not_a_global_write(lint_tree):
    result = lint_tree({
        "repro/fleet/shared.py": "SEEN = {}\n",
        "repro/fleet/dispatcher.py": '''
            def dispatch(tid):
                SEEN = {}
                SEEN[tid] = "local"
        ''',
        "repro/fleet/workers.py": '''
            def execute_trial(tid):
                SEEN = {}
                SEEN[tid] = "local"
        ''',
    }, CONC)
    assert result.ok, [f.message for f in result.active]


def test_exempt_modules_may_share_state(lint_tree):
    """The store/artifact layers are the sanctioned channel."""
    config = LintConfig(enable=("CONC001",),
                        conc_exempt=("repro/fleet/shared.py",))
    result = lint_tree({
        "repro/fleet/shared.py": SHARED,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.shared import note

            def dispatch(tid):
                note(tid, "dispatched")
        ''',
        "repro/fleet/workers.py": '''
            from repro.fleet.shared import note

            def execute_trial(tid):
                note(tid, "done")
        ''',
    }, config)
    assert result.ok, [f.message for f in result.active]


def test_conc_suppression(lint_tree):
    shared = '''
        # statlint: disable=CONC001 (inline backend only, documented)
        SEEN = {}


        def note(key, value):
            SEEN[key] = value
    '''
    result = lint_tree({
        "repro/fleet/shared.py": shared,
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.shared import note

            def dispatch(tid):
                note(tid, "dispatched")
        ''',
        "repro/fleet/workers.py": '''
            from repro.fleet.shared import note

            def execute_trial(tid):
                note(tid, "done")
        ''',
    }, CONC)
    assert result.ok
    assert len(result.suppressed) == 1


def test_extra_paths_cover_the_mp_backend_boundary(lint_tree):
    """conc_worker_paths / conc_dispatch_paths extend the rule to a
    second fork boundary (the shared-memory campaign backend): a
    module-level global written by both the parent-side dispatch code
    and the forked worker loop in the same module is flagged."""
    config = LintConfig(
        enable=("CONC001",),
        conc_dispatch_paths=("repro/fuzzer/mp.py",),
        conc_worker_paths=("repro/fuzzer/mp.py",),
        conc_worker_roots=("execute_trial", "_worker_main",
                           "_mp_worker_main"))
    result = lint_tree({
        "repro/fleet/dispatcher.py": '''
            def dispatch(tid):
                return tid
        ''',
        "repro/fleet/workers.py": '''
            def execute_trial(tid):
                return tid
        ''',
        "repro/fuzzer/mp.py": '''
            _SEGMENTS = []

            def _mp_worker_main(conn):
                _SEGMENTS.append("worker")

            def dispatch_front(batch):
                _SEGMENTS.append("parent")
        ''',
    }, config)
    (finding,) = result.active
    assert finding.rule == "CONC001"
    assert finding.path.endswith("mp.py")
    assert "'_SEGMENTS'" in finding.message


def test_fixed_through_the_store_passes(lint_tree):
    """Rerouting worker-side state through a parameterized store (no
    module-level container) clears the finding."""
    result = lint_tree({
        "repro/fleet/shared.py": '''
            def note(store, key, value):
                store.put(key, value)
        ''',
        "repro/fleet/dispatcher.py": '''
            from repro.fleet.shared import note

            def dispatch(store, tid):
                note(store, tid, "dispatched")
        ''',
        "repro/fleet/workers.py": '''
            from repro.fleet.shared import note

            def execute_trial(store, tid):
                note(store, tid, "done")
        ''',
    }, CONC)
    assert result.ok, [f.message for f in result.active]
