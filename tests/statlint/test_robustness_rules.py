"""ERR001/NUM001: broad-except routing and narrow-int arithmetic."""

from lint_helpers import rules_fired


class TestBroadExcept:
    def test_fires_on_swallowed_exception(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def safe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """})
        assert rules_fired(result) == ["ERR001"]
        (finding,) = result.active
        assert finding.line == 4

    def test_fires_on_bare_except(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def safe(fn):
                try:
                    return fn()
                except:
                    pass
            """})
        assert rules_fired(result) == ["ERR001"]
        assert "bare except" in result.active[0].message

    def test_reraise_passes(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def noisy(fn):
                try:
                    return fn()
                except Exception:
                    raise
            """})
        assert rules_fired(result) == []

    def test_chaining_into_error_class_passes(self, lint_tree):
        # The supervised-fault pattern: wrap into a *Error taxonomy
        # class (original chained as __cause__) and account for it.
        result = lint_tree({"mod.py": """\
            from repro.core.errors import InstanceFaultError

            def supervise(self, i, fn):
                try:
                    return fn()
                except Exception as exc:
                    self.record(InstanceFaultError.wrap(i, exc))
            """})
        assert rules_fired(result) == []

    def test_narrow_except_is_not_flagged(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def read(path):
                try:
                    return path.read_text()
                except FileNotFoundError:
                    return ""
            """})
        assert rules_fired(result) == []

    def test_suppression_silences(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def best_effort(fn):
                try:
                    return fn()
                except Exception:  # statlint: disable=ERR001 (cosmetic cleanup)
                    return None
            """})
        assert rules_fired(result) == []


class TestFleetArtifactWrites:
    def test_fires_on_open_w_on_a_fleet_path(self, lint_tree):
        result = lint_tree({"repro/fleet/writer.py": """\
            def persist(path, data):
                with open(path, "wb") as fh:
                    fh.write(data)
            """})
        assert rules_fired(result) == ["ERR002"]
        assert "atomic" in result.active[0].message

    def test_fires_on_mode_keyword(self, lint_tree):
        result = lint_tree({"repro/fleet/writer.py": """\
            def persist(path, text):
                with open(path, mode="w") as fh:
                    fh.write(text)
            """})
        assert rules_fired(result) == ["ERR002"]

    def test_fires_on_pass_swallow_on_a_fleet_path(self, lint_tree):
        # The pass-only broad except trips both the general routing
        # rule and the fleet-specific one.
        result = lint_tree({"repro/faults/cleanup.py": """\
            import os

            def tidy(path):
                try:
                    os.replace(path, path + ".bak")
                except Exception:
                    pass
            """})
        assert rules_fired(result) == ["ERR001", "ERR002"]

    def test_reads_appends_and_inplace_pass(self, lint_tree):
        # Append is the integrity log's contract; r+b is how chaos
        # injects damage; reads are never torn by the writer dying.
        result = lint_tree({"repro/fleet/reader.py": """\
            def touch(path):
                with open(path, "rb") as fh:
                    data = fh.read()
                with open(path, "a") as fh:
                    fh.write("entry\\n")
                with open(path, "r+b") as fh:
                    fh.write(data)
            """})
        assert rules_fired(result) == []

    def test_same_code_off_fleet_paths_passes(self, lint_tree):
        result = lint_tree({"repro/analysis/export.py": """\
            def persist(path, data):
                with open(path, "wb") as fh:
                    fh.write(data)
            """})
        assert rules_fired(result) == []

    def test_suppression_covers_the_line_below(self, lint_tree):
        result = lint_tree({"repro/fleet/writer.py": """\
            def atomic_write(path, data):
                # statlint: disable=ERR002 (atomic-write implementation site)
                with open(path + ".tmp", "wb") as fh:
                    fh.write(data)
            """})
        assert rules_fired(result) == []
        assert [f.rule for f in result.suppressed] == ["ERR002"]


class TestNarrowIntArithmetic:
    def test_fires_on_uint8_add(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            counters = np.zeros(64, dtype=np.uint8)
            total = counters + 1
            """})
        assert rules_fired(result) == ["NUM001"]
        assert "'counters'" in result.active[0].message

    def test_fires_on_augmented_assignment(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            def bump(hits):
                store = np.zeros(16, dtype=np.uint16)
                store += hits
                return store
            """})
        assert rules_fired(result) == ["NUM001"]

    def test_fires_on_astype_narrowed_value(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            def shrink(wide):
                narrow = wide.astype(np.uint8)
                return narrow * 3
            """})
        assert rules_fired(result) == ["NUM001"]

    def test_widening_cast_passes(self, lint_tree):
        # The idiom used by apply_counts in repro.core.bitmap_base.
        result = lint_tree({"mod.py": """\
            import numpy as np

            def apply(summed):
                store = np.zeros(64, dtype=np.uint8)
                return store.astype(np.int64) + summed
            """})
        assert rules_fired(result) == []

    def test_wide_arrays_pass(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            cycles = np.zeros(64, dtype=np.int64)
            total = cycles + 1
            """})
        assert rules_fired(result) == []

    def test_comment_line_suppression_silences(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import numpy as np

            def wrap_on_purpose(deltas):
                counters = np.zeros(64, dtype=np.uint8)
                # statlint: disable=NUM001 (wrap-at-256 is the AFL policy)
                counters += deltas
                return counters
            """})
        assert rules_fired(result) == []
        assert [f.rule for f in result.suppressed] == ["NUM001"]
