"""Unit tests for the fault-injection primitives (repro.faults)."""

import pytest

from repro.core.errors import FaultPlanError
from repro.faults import (CRASH, DEAD, FAULT_KINDS, LOST, RUNNING, SLOW,
                          FaultEvent, FaultInjector, FaultPlan,
                          RestartPolicy, SessionSupervisor)


class TestFaultEvent:
    def test_valid_kinds(self):
        for kind in FAULT_KINDS:
            FaultEvent(time=1.0, instance=0, kind=kind)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=1.0, instance=0, kind="meltdown")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=-0.1, instance=0, kind=CRASH)

    def test_negative_instance_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=0.1, instance=-1, kind=CRASH)

    def test_sub_unity_magnitude_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=0.1, instance=0, kind=SLOW, magnitude=0.5)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert FaultPlan([FaultEvent(1.0, 0, CRASH)])

    def test_events_sorted_by_time(self):
        plan = FaultPlan([FaultEvent(2.0, 0, CRASH),
                          FaultEvent(1.0, 1, CRASH)])
        assert [e.time for e in plan] == [1.0, 2.0]

    def test_window_query(self):
        plan = FaultPlan([FaultEvent(1.0, 0, CRASH),
                          FaultEvent(2.0, 0, CRASH),
                          FaultEvent(1.5, 1, CRASH)])
        assert len(plan.events_in(0, 0.0, 2.0)) == 1   # end exclusive
        assert len(plan.events_in(0, 1.0, 2.5)) == 2   # start inclusive
        assert len(plan.events_in(1, 0.0, 2.0)) == 1

    def test_validate_for_fleet(self):
        plan = FaultPlan([FaultEvent(1.0, 3, CRASH)])
        plan.validate_for(4)
        with pytest.raises(FaultPlanError):
            plan.validate_for(3)

    def test_generation_is_deterministic(self):
        kwargs = dict(seed=42, n_instances=4, horizon=10.0, rate=2.0)
        a = FaultPlan.generate(**kwargs)
        b = FaultPlan.generate(**kwargs)
        assert a.events == b.events
        c = FaultPlan.generate(**dict(kwargs, seed=43))
        assert a.events != c.events

    def test_generation_respects_bounds(self):
        plan = FaultPlan.generate(seed=7, n_instances=3, horizon=5.0,
                                  rate=3.0)
        assert len(plan) > 0
        for event in plan:
            assert 0.0 <= event.time < 5.0
            assert 0 <= event.instance < 3
            assert event.kind in FAULT_KINDS

    def test_generation_validates_inputs(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(seed=1, n_instances=0, horizon=1.0, rate=1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(seed=1, n_instances=1, horizon=0.0, rate=1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(seed=1, n_instances=1, horizon=1.0,
                               rate=1.0, kinds=("meltdown",))


class TestFaultInjector:
    def test_events_fire_exactly_once(self):
        plan = FaultPlan([FaultEvent(1.0, 0, CRASH)])
        injector = FaultInjector(plan)
        assert len(injector.take(0, 0.0, 2.0)) == 1
        # A checkpoint-restored instance re-entering the window must not
        # replay the fault.
        assert injector.take(0, 0.0, 2.0) == []
        assert injector.fired_events == 1

    def test_none_plan_is_empty(self):
        injector = FaultInjector(None)
        assert injector.take(0, 0.0, 100.0) == []


class TestRestartPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RestartPolicy(backoff_base=1.0, backoff_factor=2.0,
                               backoff_cap=5.0)
        assert policy.backoff(0) == 1.0
        assert policy.backoff(1) == 2.0
        assert policy.backoff(2) == 4.0
        assert policy.backoff(3) == 5.0   # capped
        assert policy.backoff(10) == 5.0


class TestSessionSupervisor:
    def test_restart_budget_then_lost(self):
        sup = SessionSupervisor(2, RestartPolicy(max_restarts=1,
                                                 backoff_base=0.5))
        assert sup.live_indices() == [0, 1]
        assert sup.mark_failed(0, now=1.0, reason="crash") == DEAD
        assert sup[0].restart_at == pytest.approx(1.5)
        sup.mark_restarted(0)
        assert sup[0].status == RUNNING and sup[0].restarts == 1
        # Budget exhausted: the next failure is terminal.
        assert sup.mark_failed(0, now=2.0, reason="crash") == LOST
        assert sup.lost_indices() == [0]
        assert sup.live_indices() == [1]

    def test_failure_resets_fault_windows(self):
        sup = SessionSupervisor(1)
        sup[0].slow_factor = 4.0
        sup[0].slow_until = 9.0
        sup[0].stalled_since = 1.0
        sup.mark_failed(0, now=2.0, reason="stall")
        assert sup[0].slow_factor == 1.0
        assert sup[0].stalled_since is None
        assert sup[0].failures and "stall" in sup[0].failures[0]
