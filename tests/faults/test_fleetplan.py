"""FleetFaultPlan: event validation, ordering, seeded generation."""

import pytest

from repro.core.errors import FaultPlanError
from repro.faults import (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE,
                          DISPATCHER_KILL, FLEET_FAULT_KINDS,
                          STORE_LOCK, WORKER_KILL, WORKER_STALL,
                          FleetFaultEvent, FleetFaultPlan)
from repro.faults.fleetplan import TRIAL_SCOPED


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fleet fault"):
            FleetFaultEvent(at_tick=1, kind="power-outage")

    def test_negative_tick_rejected(self):
        with pytest.raises(FaultPlanError, match="at_tick"):
            FleetFaultEvent(at_tick=-1, kind=DISPATCHER_KILL)

    @pytest.mark.parametrize("kind", TRIAL_SCOPED)
    def test_trial_scoped_kinds_need_a_trial(self, kind):
        with pytest.raises(FaultPlanError, match="must name a trial"):
            FleetFaultEvent(at_tick=1, kind=kind)
        FleetFaultEvent(at_tick=1, kind=kind, trial=0)  # ok

    def test_dispatcher_kill_needs_no_trial(self):
        event = FleetFaultEvent(at_tick=3, kind=DISPATCHER_KILL)
        assert event.trial == -1

    def test_negative_segment_rejected(self):
        with pytest.raises(FaultPlanError, match="at_segment"):
            FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=0,
                            at_segment=-1)

    def test_zero_lock_count_rejected(self):
        with pytest.raises(FaultPlanError, match="lock_count"):
            FleetFaultEvent(at_tick=1, kind=STORE_LOCK, lock_count=0)


class TestPlan:
    def _events(self):
        return [
            FleetFaultEvent(at_tick=5, kind=STORE_LOCK),
            FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=2),
            FleetFaultEvent(at_tick=1, kind=DISPATCHER_KILL),
            FleetFaultEvent(at_tick=3, kind=ARTIFACT_CORRUPT, trial=0),
        ]

    def test_events_are_tick_ordered(self):
        plan = FleetFaultPlan(self._events())
        ticks = [e.at_tick for e in plan]
        assert ticks == sorted(ticks)
        # Same tick: deterministic kind ordering, input order ignored.
        assert [e.kind for e in plan.at(1)] == \
            [DISPATCHER_KILL, WORKER_KILL]

    def test_empty_plan_is_falsy_identity(self):
        plan = FleetFaultPlan()
        assert not plan
        assert len(plan) == 0
        assert plan.at(0) == []
        assert plan.max_trial() == -1
        plan.validate_for(0)  # nothing to reject

    def test_worker_faults_selects_kill_and_stall(self):
        events = self._events() + [
            FleetFaultEvent(at_tick=2, kind=WORKER_STALL, trial=1)]
        plan = FleetFaultPlan(events)
        kinds = sorted(e.kind for e in plan.worker_faults())
        assert kinds == [WORKER_KILL, WORKER_STALL]

    def test_validate_for_rejects_out_of_range_trials(self):
        plan = FleetFaultPlan(self._events())
        plan.validate_for(3)   # trials 0..2 all addressable
        with pytest.raises(FaultPlanError, match="expands to 2"):
            plan.validate_for(2)

    def test_at_returns_exact_tick_matches(self):
        plan = FleetFaultPlan(self._events())
        assert [e.kind for e in plan.at(5)] == [STORE_LOCK]
        assert plan.at(4) == []


class TestGenerate:
    def test_same_seed_same_plan(self):
        kwargs = dict(seed=7, n_trials=4, horizon=10, n_events=8)
        a = FleetFaultPlan.generate(**kwargs)
        b = FleetFaultPlan.generate(**kwargs)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FleetFaultPlan.generate(seed=0, n_trials=4, horizon=10,
                                    n_events=8)
        b = FleetFaultPlan.generate(seed=1, n_trials=4, horizon=10,
                                    n_events=8)
        assert a.events != b.events

    def test_generated_events_respect_bounds(self):
        plan = FleetFaultPlan.generate(seed=3, n_trials=5, horizon=6,
                                       n_events=32, max_segment=2)
        assert len(plan) == 32
        for event in plan:
            assert 1 <= event.at_tick <= 6
            assert event.kind in FLEET_FAULT_KINDS
            if event.kind in TRIAL_SCOPED:
                assert 0 <= event.trial < 5
            assert 0 <= event.at_segment <= 2
        plan.validate_for(5)

    def test_kind_restriction_honoured(self):
        plan = FleetFaultPlan.generate(
            seed=11, n_trials=2, horizon=4, n_events=10,
            kinds=(DISPATCHER_KILL, STORE_LOCK))
        assert {e.kind for e in plan} <= {DISPATCHER_KILL, STORE_LOCK}

    def test_generate_rejects_bad_arguments(self):
        with pytest.raises(FaultPlanError):
            FleetFaultPlan.generate(seed=0, n_trials=0, horizon=4,
                                    n_events=1)
        with pytest.raises(FaultPlanError):
            FleetFaultPlan.generate(seed=0, n_trials=1, horizon=0,
                                    n_events=1)
        with pytest.raises(FaultPlanError):
            FleetFaultPlan.generate(seed=0, n_trials=1, horizon=4,
                                    n_events=-1)
        with pytest.raises(FaultPlanError, match="unknown"):
            FleetFaultPlan.generate(seed=0, n_trials=1, horizon=4,
                                    n_events=1, kinds=("meteor",))
