"""Unit tests for the analytical bitmap cost model."""

import pytest

from repro.core.errors import CalibrationError
from repro.memsim import (AFL, BIGMAP, BitmapCostModel, ExecShape,
                          MapCostConfig, XEON_E5645)

SHAPE = ExecShape(traversals=16_000, unique_locations=9_000,
                  used_bytes=30_000)
SMALL_SHAPE = ExecShape(traversals=400, unique_locations=250,
                        used_bytes=900)


def model(kind, map_size, **kwargs):
    defaults = dict(merged_classify_compare=True, huge_pages=True)
    defaults.update({k: v for k, v in kwargs.items()
                     if k in ("merged_classify_compare",
                              "non_temporal_reset", "huge_pages")})
    model_kwargs = {k: v for k, v in kwargs.items()
                    if k not in defaults}
    return BitmapCostModel(MapCostConfig(kind, map_size, **defaults),
                           **model_kwargs)


class TestConfigValidation:
    def test_unknown_kind(self):
        with pytest.raises(CalibrationError):
            MapCostConfig("hashmap", 1 << 16)

    def test_bad_size(self):
        with pytest.raises(CalibrationError):
            MapCostConfig(AFL, 0)

    def test_negative_cost_params(self):
        with pytest.raises(CalibrationError):
            BitmapCostModel(MapCostConfig(AFL, 1 << 16),
                            exec_base_cycles=-1)


class TestWorkingSets:
    def test_afl_working_set_scales_with_map(self):
        small = model(AFL, 1 << 16).working_set_bytes(SHAPE)
        big = model(AFL, 1 << 23).working_set_bytes(SHAPE)
        assert big - small == 2 * ((1 << 23) - (1 << 16))

    def test_bigmap_working_set_independent_of_map(self):
        small = model(BIGMAP, 1 << 16).working_set_bytes(SHAPE)
        big = model(BIGMAP, 1 << 23).working_set_bytes(SHAPE)
        assert small == big

    def test_bigmap_working_set_tracks_used(self):
        lightly = model(BIGMAP, 1 << 21).working_set_bytes(SMALL_SHAPE)
        heavily = model(BIGMAP, 1 << 21).working_set_bytes(SHAPE)
        assert heavily > lightly


class TestThroughputShape:
    """The paper's central claims, at the model level."""

    def test_afl_cost_grows_with_map_size(self):
        costs = [model(AFL, size).exec_cycles(SHAPE).total
                 for size in (1 << 16, 1 << 18, 1 << 21, 1 << 23)]
        assert costs == sorted(costs)
        assert costs[-1] > 10 * costs[0]

    def test_bigmap_cost_flat_across_map_sizes(self):
        costs = [model(BIGMAP, size).exec_cycles(SHAPE).total
                 for size in (1 << 16, 1 << 18, 1 << 21, 1 << 23)]
        assert max(costs) / min(costs) < 1.05

    def test_bigmap_cost_tracks_used_not_map(self):
        m = model(BIGMAP, 1 << 23)
        light = m.exec_cycles(SMALL_SHAPE).total
        heavy = m.exec_cycles(SHAPE).total
        assert heavy > light

    def test_sweep_ops_dominate_afl_at_8m(self):
        ops = model(AFL, 1 << 23).exec_cycles(SHAPE)
        map_ops = ops.reset + ops.classify + ops.compare
        assert map_ops > ops.execution

    def test_map_ops_negligible_at_64k(self):
        ops = model(AFL, 1 << 16,
                    exec_base_cycles=400_000).exec_cycles(SHAPE)
        map_ops = ops.reset + ops.classify + ops.compare
        assert map_ops < 0.2 * ops.total

    def test_hash_priced_only_when_interesting(self):
        m = model(AFL, 1 << 21)
        boring = m.exec_cycles(SHAPE)
        interesting = m.exec_cycles(ExecShape(
            traversals=SHAPE.traversals,
            unique_locations=SHAPE.unique_locations,
            used_bytes=SHAPE.used_bytes, interesting=True))
        assert boring.hash == 0.0
        assert interesting.hash > 0.0

    def test_bigmap_hash_covers_used_region_only(self):
        big = model(BIGMAP, 1 << 23).exec_cycles(ExecShape(
            traversals=100, unique_locations=50, used_bytes=10_000,
            interesting=True, hash_bytes=10_000))
        afl = model(AFL, 1 << 23).exec_cycles(ExecShape(
            traversals=100, unique_locations=50, interesting=True))
        assert big.hash < afl.hash / 10


class TestOptimizations:
    def test_merged_classify_compare_cheaper(self):
        merged = model(AFL, 1 << 21,
                       merged_classify_compare=True).exec_cycles(SHAPE)
        split = model(AFL, 1 << 21,
                      merged_classify_compare=False).exec_cycles(SHAPE)
        assert merged.classify == 0.0
        assert split.classify > 0.0
        assert merged.total < split.total

    def test_non_temporal_reset_helps_dram_bound_afl(self):
        nt = model(AFL, 1 << 23, non_temporal_reset=True)
        normal = model(AFL, 1 << 23, non_temporal_reset=False)
        assert nt.exec_cycles(SHAPE).reset < \
            normal.exec_cycles(SHAPE).reset

    def test_non_temporal_reset_hurts_cache_resident_afl(self):
        nt = model(AFL, 1 << 16, non_temporal_reset=True)
        normal = model(AFL, 1 << 16, non_temporal_reset=False)
        assert nt.exec_cycles(SMALL_SHAPE).reset > \
            normal.exec_cycles(SMALL_SHAPE).reset

    def test_huge_pages_remove_tlb_penalty(self):
        huge = model(AFL, 1 << 23, huge_pages=True).exec_cycles(SHAPE)
        small = model(AFL, 1 << 23, huge_pages=False).exec_cycles(SHAPE)
        assert small.total > huge.total

    def test_indirection_costs_bigmap_per_traversal(self):
        cheap = BitmapCostModel(MapCostConfig(BIGMAP, 1 << 21),
                                indirection_cycles=0.0)
        costly = BitmapCostModel(MapCostConfig(BIGMAP, 1 << 21),
                                 indirection_cycles=5.0)
        delta = costly.exec_cycles(SHAPE).execution - \
            cheap.exec_cycles(SHAPE).execution
        assert delta == pytest.approx(5.0 * SHAPE.traversals)


class TestDramTraffic:
    def test_no_traffic_when_resident(self):
        assert model(AFL, 1 << 16).dram_bytes_per_exec(SMALL_SHAPE) == 0
        assert model(BIGMAP, 1 << 23).dram_bytes_per_exec(SHAPE) == 0

    def test_traffic_when_working_set_overflows(self):
        traffic = model(AFL, 1 << 23).dram_bytes_per_exec(SHAPE)
        assert traffic > 4 * (1 << 23)

    def test_throughput_inverse_of_cycles(self):
        m = model(AFL, 1 << 21)
        rate = m.throughput(SHAPE)
        assert rate == pytest.approx(
            XEON_E5645.frequency_hz / m.exec_cycles(SHAPE).total)


class TestExecCyclesBatch:
    """exec_cycles_batch must be bit-identical to per-shape exec_cycles."""

    CONFIGS = [
        dict(kind=AFL, map_size=1 << 16),
        dict(kind=AFL, map_size=1 << 23, huge_pages=False,
             non_temporal_reset=True),
        dict(kind=AFL, map_size=1 << 21, merged_classify_compare=False),
        dict(kind=BIGMAP, map_size=1 << 23),
        dict(kind=BIGMAP, map_size=1 << 26, huge_pages=False),
        dict(kind=BIGMAP, map_size=1 << 21,
             merged_classify_compare=False),
    ]

    @pytest.mark.parametrize("cfg", CONFIGS,
                             ids=lambda c: f"{c['kind']}-{c['map_size']}")
    @pytest.mark.parametrize("used_bytes", [0, 900, 30_000, 1 << 21])
    def test_bit_identical_to_scalar(self, cfg, used_bytes):
        import numpy as np
        m = model(cfg["kind"], cfg["map_size"],
                  **{k: v for k, v in cfg.items()
                     if k not in ("kind", "map_size")})
        rng = np.random.default_rng(7)
        trav = rng.integers(0, 200_000, size=64)
        uniq = rng.integers(0, 50_000, size=64)
        batch = m.exec_cycles_batch(trav, uniq, used_bytes=used_bytes)
        totals = batch.totals()
        for i in range(64):
            ref = m.exec_cycles(ExecShape(
                traversals=int(trav[i]),
                unique_locations=int(uniq[i]),
                used_bytes=used_bytes))
            row = batch.row(i)
            assert row.execution == ref.execution, f"row {i} execution"
            assert row.reset == ref.reset
            assert row.classify == ref.classify
            assert row.compare == ref.compare
            assert row.hash == ref.hash == 0.0
            assert row.others == ref.others
            assert float(totals[i]) == ref.total, f"row {i} total"

    def test_fork_overhead_included(self):
        import numpy as np
        m = BitmapCostModel(MapCostConfig(AFL, 1 << 16),
                            fork_overhead_cycles=600_000.0)
        batch = m.exec_cycles_batch(np.array([100]), np.array([50]))
        ref = m.exec_cycles(ExecShape(traversals=100,
                                      unique_locations=50))
        assert batch.row(0).execution == ref.execution
