"""Unit tests for the parallel-contention model (Figure 9's physics)."""

import pytest

from repro.memsim import (AFL, BIGMAP, BitmapCostModel, ExecShape,
                          InstanceLoad, MapCostConfig, XEON_E5645,
                          scaling_curve, solve_parallel)

SHAPE = ExecShape(traversals=16_000, unique_locations=9_000,
                  used_bytes=30_000)


def load(kind, map_size=1 << 21):
    model = BitmapCostModel(
        MapCostConfig(kind, map_size, non_temporal_reset=(kind == AFL)),
        exec_base_cycles=900_000, per_traversal_cycles=0.0)
    return InstanceLoad(model, SHAPE)


class TestSolveParallel:
    def test_single_instance_matches_solo(self):
        l = load(BIGMAP)
        solved = solve_parallel([l])
        assert solved.total_rate == pytest.approx(
            l.model.throughput(SHAPE), rel=0.05)
        assert solved.slowdown == pytest.approx(1.0, abs=0.01)

    def test_needs_instances(self):
        with pytest.raises(ValueError):
            solve_parallel([])

    def test_rejects_more_instances_than_cores(self):
        with pytest.raises(ValueError):
            solve_parallel([load(AFL)] * 13)

    def test_per_instance_rates_positive(self):
        solved = solve_parallel([load(AFL)] * 8)
        assert all(r > 0 for r in solved.per_instance_rate)


class TestScalingShapes:
    """The qualitative Figure 9(a) claims."""

    def test_bigmap_scales_nearly_linearly(self):
        curve = scaling_curve(load(BIGMAP), range(1, 13))
        totals = [r.total_rate for r in curve]
        # 12 instances should deliver clearly more than 8x one.
        assert totals[-1] / totals[0] > 8.0
        assert totals == sorted(totals), "BigMap total never decreases"

    def test_afl_2m_saturates_or_degrades(self):
        curve = scaling_curve(load(AFL), range(1, 13))
        totals = [r.total_rate for r in curve]
        # Far below linear scaling...
        assert totals[-1] / totals[0] < 6.0
        # ... and past the knee, adding instances stops helping:
        # the k=12 total must not beat the best seen by more than a
        # few percent (paper: negative slope above 4).
        peak = max(totals)
        assert totals[-1] <= peak * 1.02

    def test_afl_loses_more_speedup_with_more_instances(self):
        """Figure 9(b): BigMap's advantage grows super-linearly."""
        afl = scaling_curve(load(AFL), (1, 4, 8, 12))
        big = scaling_curve(load(BIGMAP), (1, 4, 8, 12))
        speedups = [b.total_rate / a.total_rate
                    for a, b in zip(afl, big)]
        assert speedups == sorted(speedups)
        assert speedups[-1] > speedups[0] * 2

    def test_contention_comes_from_llc_share(self):
        """A single AFL instance at 2 MB fits the LLC; at 8 instances
        its 1/8 share no longer holds the working set, so DRAM demand
        appears."""
        solo = solve_parallel([load(AFL)])
        crowded = solve_parallel([load(AFL)] * 8)
        assert solo.demand_bytes_per_sec == 0
        assert crowded.demand_bytes_per_sec > 0

    def test_bigmap_stays_resident_under_sharing(self):
        crowded = solve_parallel([load(BIGMAP)] * 12)
        assert crowded.slowdown == pytest.approx(1.0, abs=0.05)

    def test_mixed_instances(self):
        solved = solve_parallel([load(AFL), load(BIGMAP)])
        afl_rate, big_rate = solved.per_instance_rate
        assert big_rate > afl_rate
