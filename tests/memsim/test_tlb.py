"""Unit tests for the DTLB model: analytic fractions vs exact LRU sim."""

import numpy as np
import pytest

from repro.memsim import (DTLBSim, XEON_E5645, pages_for_region,
                          scattered_walk_fraction, sweep_walk_cycles)
from repro.memsim.machine import Machine


class TestAnalytic:
    def test_pages_ceil(self):
        m = XEON_E5645
        assert pages_for_region(1, m, huge_pages=False) == 1
        assert pages_for_region(4096, m, huge_pages=False) == 1
        assert pages_for_region(4097, m, huge_pages=False) == 2

    def test_small_region_no_walks(self):
        m = XEON_E5645
        region = m.dtlb_entries * m.page_bytes
        assert scattered_walk_fraction(region, m, False) == 0.0
        assert sweep_walk_cycles(region, m, False) == 0.0

    def test_large_region_walks(self):
        m = XEON_E5645
        region = 8 << 20  # 8 MB = 2048 pages >> 64 entries
        frac = scattered_walk_fraction(region, m, False)
        assert frac == pytest.approx(1 - 64 / 2048)
        assert sweep_walk_cycles(region, m, False) == \
            2048 * m.walk_cycles

    def test_huge_pages_eliminate_walks(self):
        m = XEON_E5645
        region = 8 << 20  # 4 huge pages
        assert scattered_walk_fraction(region, m, True) == 0.0
        assert sweep_walk_cycles(region, m, True) == 0.0

    def test_monotone_in_region(self):
        m = XEON_E5645
        fracs = [scattered_walk_fraction(size, m, False)
                 for size in (1 << 18, 1 << 20, 1 << 23, 1 << 25)]
        assert fracs == sorted(fracs)


class TestDTLBSim:
    def test_hit_after_miss(self):
        tlb = DTLBSim(entries=4, page_bytes=4096)
        assert not tlb.access(0)
        assert tlb.access(100)

    def test_lru_eviction(self):
        tlb = DTLBSim(entries=2, page_bytes=4096)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(8192)  # evicts page 0
        assert not tlb.access(0)

    def test_entries_validated(self):
        with pytest.raises(ValueError):
            DTLBSim(entries=0, page_bytes=4096)

    def test_analytic_fraction_matches_simulation(self):
        """Random scattered accesses into a region: the analytic miss
        fraction should approximate the simulated steady-state rate."""
        machine = Machine()
        region = 1 << 21  # 512 pages vs 64 entries
        rng = np.random.default_rng(3)
        tlb = DTLBSim(machine.dtlb_entries, machine.page_bytes)
        addrs = rng.integers(0, region, size=20_000)
        for a in addrs[:5_000]:  # warmup
            tlb.access(int(a))
        tlb.hits = tlb.misses = 0
        for a in addrs[5_000:]:
            tlb.access(int(a))
        analytic = scattered_walk_fraction(region, machine, False)
        assert tlb.miss_rate == pytest.approx(analytic, abs=0.08)
