"""Unit tests for the exact cache simulator, and model validation."""

import numpy as np
import pytest

from repro.memsim import CacheHierarchy, SetAssociativeCache


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, assoc=2, line_size=64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63), "same line"
        assert not cache.access(64), "next line"

    def test_lru_eviction_within_set(self):
        # 2-way, 2 sets: lines 0,2,4 map to set 0 (line idx mod 2).
        cache = SetAssociativeCache(256, assoc=2, line_size=64)
        cache.access(0)        # set 0
        cache.access(128)      # set 0 (line 2)
        cache.access(256)      # set 0 (line 4) -> evicts line 0
        assert not cache.contains(0)
        assert cache.contains(128)
        assert cache.contains(256)

    def test_lru_order_updated_on_hit(self):
        cache = SetAssociativeCache(256, assoc=2, line_size=64)
        cache.access(0)
        cache.access(128)
        cache.access(0)        # refresh line 0
        cache.access(256)      # evicts 128, not 0
        assert cache.contains(0)
        assert not cache.contains(128)

    def test_hit_rate(self):
        cache = SetAssociativeCache(1024, assoc=4, line_size=64)
        cache.access_many([0, 0, 0, 0])
        assert cache.hit_rate == pytest.approx(0.75)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, assoc=3, line_size=63)

    def test_resident_lines(self):
        cache = SetAssociativeCache(1024, assoc=4, line_size=64)
        cache.access_many(range(0, 512, 64))
        assert cache.resident_lines() == 8


class TestHierarchy:
    def test_levels_report_server(self):
        hierarchy = CacheHierarchy([
            SetAssociativeCache(256, assoc=2, line_size=64),
            SetAssociativeCache(1024, assoc=4, line_size=64)])
        assert hierarchy.access(0) == 2      # memory
        assert hierarchy.access(0) == 0      # L1
        # Evict from tiny L1 but not from L2.
        hierarchy.access_many(range(64, 2048, 64))
        level = hierarchy.access(0)
        assert level in (1, 2)

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestModelValidation:
    """The analytical rules of the cost model, checked against the
    exact simulator (DESIGN.md §4, validation requirement)."""

    def test_full_sweep_evicts_hot_data(self):
        """AFL's pathology: streaming a region larger than the cache
        evicts previously hot lines (the paper's cache pollution)."""
        cache = SetAssociativeCache(4096, assoc=8, line_size=64)
        hot = list(range(0, 1024, 64))          # 1 kB hot set
        cache.access_many(hot)
        base = 1 << 20
        sweep = range(base, base + 8192, 64)     # 8 kB > 4 kB cache
        cache.access_many(sweep)
        cache.reset_stats()
        cache.access_many(hot)
        assert cache.hit_rate < 0.5, \
            "hot lines should have been evicted by the big sweep"

    def test_small_condensed_region_survives_sweeps(self):
        """BigMap's win: when the per-iteration footprint fits, the hot
        region stays resident across iterations."""
        cache = SetAssociativeCache(4096, assoc=8, line_size=64)
        hot = list(range(0, 512, 64))            # 512 B condensed map
        small_sweep = list(range(1 << 20, (1 << 20) + 1024, 64))
        cache.access_many(hot)
        for _ in range(5):                        # five iterations
            cache.access_many(small_sweep)
            cache.reset_stats()
            cache.access_many(hot)
            assert cache.hit_rate == 1.0, \
                "condensed region must stay resident"

    def test_working_set_boundary(self):
        """Hit rate collapses right where the working set crosses the
        capacity — the residency rule the analytical model uses."""
        cache_bytes = 8192
        for ws_bytes, expect_resident in ((4096, True), (32768, False)):
            cache = SetAssociativeCache(cache_bytes, assoc=8,
                                        line_size=64)
            lines = list(range(0, ws_bytes, 64))
            for _ in range(3):  # warm + steady state
                cache.access_many(lines)
            cache.reset_stats()
            cache.access_many(lines)
            if expect_resident:
                assert cache.hit_rate == 1.0
            else:
                assert cache.hit_rate < 0.2
