"""Unit tests for the paper-anchor calibration."""

import pytest

from repro.core.errors import CalibrationError
from repro.memsim import (AFL, BIGMAP, ExecShape, PAPER_THROUGHPUT_64K,
                          calibrate_execution_cost, model_for_benchmark,
                          target_working_set_bytes)

SHAPE = ExecShape(traversals=5_000, unique_locations=3_000,
                  used_bytes=12_000)


class TestAnchors:
    def test_anchor_table_mean_matches_paper(self):
        """The paper states an AFL 64 kB average of ~4,400/s over the
        19 Table II benchmarks."""
        table2 = [v for k, v in PAPER_THROUGHPUT_64K.items()
                  if k not in ("loop-unswitch", "sccp", "earlycase",
                               "loop-prediction", "loop-rotate", "irce",
                               "simplifycfg")]
        assert len(table2) == 19
        mean = sum(table2) / len(table2)
        assert mean == pytest.approx(4_400, rel=0.05)

    def test_every_registry_benchmark_has_an_anchor(self):
        from repro.target import benchmark_names
        for name in benchmark_names("all"):
            assert name in PAPER_THROUGHPUT_64K


class TestCalibration:
    def test_model_reproduces_anchor_at_64k(self):
        for name in ("zlib", "sqlite3", "instcombine"):
            model = model_for_benchmark(name, AFL, 1 << 16, SHAPE,
                                        n_edges=10_000)
            assert model.throughput(SHAPE) == pytest.approx(
                PAPER_THROUGHPUT_64K[name], rel=0.01)

    def test_anchor_override(self):
        model = model_for_benchmark("whatever", AFL, 1 << 16, SHAPE,
                                    n_edges=5_000, anchor_rate=3_000.0)
        assert model.throughput(SHAPE) == pytest.approx(3_000, rel=0.01)

    def test_unknown_benchmark_without_anchor(self):
        with pytest.raises(CalibrationError):
            model_for_benchmark("doom", AFL, 1 << 16, SHAPE,
                                n_edges=100)

    def test_unachievable_anchor_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_execution_cost(1e9, SHAPE)

    def test_costs_positive(self):
        costs = calibrate_execution_cost(2_000.0, SHAPE)
        assert costs["exec_base_cycles"] > 0
        assert costs["per_traversal_cycles"] > 0

    def test_bigmap_model_uses_same_execution_budget(self):
        """Calibration charges the same target-execution cost to both
        fuzzers; only the map structure differs."""
        afl = model_for_benchmark("zlib", AFL, 1 << 16, SHAPE,
                                  n_edges=722)
        big = model_for_benchmark("zlib", BIGMAP, 1 << 16, SHAPE,
                                  n_edges=722)
        assert afl.exec_base_cycles == big.exec_base_cycles
        assert afl.per_traversal_cycles == big.per_traversal_cycles

    def test_auto_non_temporal_reset(self):
        small = model_for_benchmark("zlib", AFL, 1 << 16, SHAPE,
                                    n_edges=722)
        large = model_for_benchmark("zlib", AFL, 1 << 23, SHAPE,
                                    n_edges=722)
        assert not small.config.non_temporal_reset
        assert large.config.non_temporal_reset

    def test_explicit_nt_respected(self):
        model = model_for_benchmark("zlib", AFL, 1 << 23, SHAPE,
                                    n_edges=722,
                                    non_temporal_reset=False)
        assert not model.config.non_temporal_reset


class TestWorkingSetHeuristic:
    def test_clamped(self):
        assert target_working_set_bytes(0) == 48 * 1024
        assert target_working_set_bytes(10**9) == 4 * 1024 * 1024

    def test_monotone(self):
        sizes = [target_working_set_bytes(n)
                 for n in (1_000, 10_000, 100_000)]
        assert sizes == sorted(sizes)
