"""Per-level cycle attribution: the telemetry-facing decomposition of
``exec_cycles`` must account for every cycle exactly, across every
pricing branch of the model."""

import itertools

import pytest

from repro.memsim import (AFL, BIGMAP, BitmapCostModel, ExecShape,
                          MapCostConfig)

LEVEL_KEYS = ("core", "l1d", "l2", "llc", "dram", "tlb")

SHAPES = (
    ExecShape(traversals=16_000, unique_locations=9_000,
              used_bytes=30_000),
    ExecShape(traversals=400, unique_locations=250, used_bytes=900,
              interesting=True, hash_bytes=900),
)


def variants():
    for kind, size, merged, nt, huge in itertools.product(
            (AFL, BIGMAP), (1 << 16, 1 << 23), (True, False),
            (True, False), (True, False)):
        yield BitmapCostModel(MapCostConfig(
            kind, size, merged_classify_compare=merged,
            non_temporal_reset=nt, huge_pages=huge))


@pytest.mark.parametrize("shape", SHAPES)
def test_attribution_sums_to_exec_cycles_total(shape):
    for model in variants():
        attribution = model.cycle_attribution(shape)
        assert set(attribution) == set(LEVEL_KEYS)
        assert all(v >= 0.0 for v in attribution.values())
        total = model.exec_cycles(shape).total
        assert sum(attribution.values()) == pytest.approx(
            total, rel=1e-12), model.config


def test_level_share_normalizes():
    model = BitmapCostModel(MapCostConfig(AFL, 1 << 23))
    share = model.level_share(SHAPES[0])
    assert set(share) == set(LEVEL_KEYS)
    assert sum(share.values()) == pytest.approx(1.0)
    assert all(0.0 <= v <= 1.0 for v in share.values())


def test_afl_large_map_attribution_leaves_core():
    """Figure 3's story in attribution form: at 8M the AFL sweeps are
    priced out of cache, so dram + llc must carry real weight."""
    small = BitmapCostModel(MapCostConfig(AFL, 1 << 16))
    large = BitmapCostModel(MapCostConfig(AFL, 1 << 23))
    shape = SHAPES[0]
    small_share = small.level_share(shape)
    large_share = large.level_share(shape)
    assert large_share["dram"] + large_share["llc"] > \
        small_share["dram"] + small_share["llc"]


def test_non_temporal_reset_moves_reset_to_dram():
    shape = SHAPES[0]
    nt = BitmapCostModel(MapCostConfig(
        AFL, 1 << 23, non_temporal_reset=True))
    plain = BitmapCostModel(MapCostConfig(
        AFL, 1 << 23, non_temporal_reset=False))
    assert nt.cycle_attribution(shape)["dram"] > 0.0
    # NT stores bypass the hierarchy: totals still fully accounted.
    assert sum(nt.cycle_attribution(shape).values()) == pytest.approx(
        nt.exec_cycles(shape).total, rel=1e-12)
    assert sum(plain.cycle_attribution(shape).values()) == pytest.approx(
        plain.exec_cycles(shape).total, rel=1e-12)
