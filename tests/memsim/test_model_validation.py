"""Quantitative validation: analytical residency rule vs exact caches.

The cost model's central assumption (see repro.memsim.costmodel module
doc) is a residency rule. These tests drive the *exact* LRU simulator
with the actual access patterns of both fuzzers' iteration loops and
check that the analytical classifications match what LRU really does.
"""

import numpy as np
import pytest

from repro.memsim import SetAssociativeCache

LINE = 64


def _sweep_addrs(base, size):
    return range(base, base + size, LINE)


def _iteration_afl(cache, map_base, virgin_base, map_size, hot_keys):
    """One AFL iteration: reset sweep, scattered updates, classify+
    compare sweep over both maps."""
    cache.access_many(_sweep_addrs(map_base, map_size))          # reset
    cache.access_many([map_base + int(k) for k in hot_keys])     # update
    cache.access_many(_sweep_addrs(map_base, map_size))          # cls+cmp
    cache.access_many(_sweep_addrs(virgin_base, map_size))


def _iteration_bigmap(cache, cov_base, index_base, used, hot_keys):
    """One BigMap iteration: dense sweeps over the used region plus
    scattered index reads."""
    cache.access_many(_sweep_addrs(cov_base, used))              # reset
    cache.access_many([index_base + int(k) * 8 for k in hot_keys])
    cache.access_many(_sweep_addrs(cov_base, used))              # counters
    cache.access_many(_sweep_addrs(cov_base, used))              # cls+cmp


class TestAflResidency:
    def test_small_map_stays_resident(self):
        """W = 2x map + hot keys fits: steady-state hit rate ~1."""
        cache = SetAssociativeCache(256 * 1024, assoc=8)  # L2-like
        rng = np.random.default_rng(0)
        map_size = 32 * 1024
        keys = rng.integers(0, map_size, size=200)
        for _ in range(3):
            _iteration_afl(cache, 0, 1 << 20, map_size, keys)
        cache.reset_stats()
        _iteration_afl(cache, 0, 1 << 20, map_size, keys)
        assert cache.hit_rate > 0.95

    def test_oversized_map_thrashes(self):
        """A single map bigger than the cache: every sweep self-evicts
        (LRU cyclic pathology) and the steady-state hit rate collapses
        — the cliff the analytical rule encodes."""
        cache = SetAssociativeCache(256 * 1024, assoc=8)
        rng = np.random.default_rng(0)
        map_size = 512 * 1024  # each map alone exceeds the cache
        keys = rng.integers(0, map_size, size=200)
        for _ in range(2):
            _iteration_afl(cache, 0, 1 << 21, map_size, keys)
        cache.reset_stats()
        _iteration_afl(cache, 0, 1 << 21, map_size, keys)
        assert cache.hit_rate < 0.05, \
            "LRU keeps evicting the next needed line on cyclic sweeps"

    def test_between_regimes_partial_reuse(self):
        """When the pair of maps is ~2x the cache but each map alone
        fits, back-to-back sweeps of the same map still hit — the model
        treats this band conservatively (priced at the level fitting W)
        and calibration absorbs the difference; this test documents the
        real LRU behaviour so the approximation stays a known one."""
        cache = SetAssociativeCache(256 * 1024, assoc=8)
        rng = np.random.default_rng(0)
        map_size = 256 * 1024
        keys = rng.integers(0, map_size, size=200)
        for _ in range(2):
            _iteration_afl(cache, 0, 1 << 20, map_size, keys)
        cache.reset_stats()
        _iteration_afl(cache, 0, 1 << 20, map_size, keys)
        assert 0.1 < cache.hit_rate < 0.6


class TestBigMapResidency:
    def test_condensed_region_resident_despite_huge_map(self):
        """BigMap's iteration footprint is used_key-sized, so it stays
        hot even when the nominal map is far larger than the cache."""
        cache = SetAssociativeCache(256 * 1024, assoc=8)
        rng = np.random.default_rng(1)
        used = 16 * 1024
        index_span = 8 << 20  # 8M-entry map: index 64 MB; irrelevant
        keys = rng.integers(0, index_span // 8, size=300)
        for _ in range(3):
            _iteration_bigmap(cache, 0, 1 << 27, used, keys)
        cache.reset_stats()
        _iteration_bigmap(cache, 0, 1 << 27, used, keys)
        # Dense sweeps all hit; only the scattered index reads may miss
        # (their lines were touched last iteration, so they hit too).
        assert cache.hit_rate > 0.95

    def test_bigmap_beats_afl_at_equal_nominal_size(self):
        """Head-to-head on the same exact cache: miss counts per
        iteration, 1 MB nominal map, 16 kB live."""
        rng = np.random.default_rng(2)
        nominal = 1 << 20
        used = 16 * 1024
        keys = rng.integers(0, nominal, size=300)

        afl_cache = SetAssociativeCache(256 * 1024, assoc=8)
        for _ in range(2):
            _iteration_afl(afl_cache, 0, 1 << 24, nominal, keys)
        afl_cache.reset_stats()
        _iteration_afl(afl_cache, 0, 1 << 24, nominal, keys)

        big_cache = SetAssociativeCache(256 * 1024, assoc=8)
        for _ in range(2):
            _iteration_bigmap(big_cache, 0, 1 << 24, used, keys)
        big_cache.reset_stats()
        _iteration_bigmap(big_cache, 0, 1 << 24, used, keys)

        assert big_cache.misses < afl_cache.misses / 20, \
            "BigMap's steady-state misses should be orders lower"
