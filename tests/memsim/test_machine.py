"""Unit tests for the machine description."""

import pytest

from repro.memsim import XEON_E5645, CacheLevel, Machine


class TestXeonDefaults:
    def test_paper_hierarchy(self):
        """§V-A1: 32 kB L1d, 256 kB L2, 12 MB shared LLC, 2.40 GHz,
        12 physical cores."""
        m = XEON_E5645
        assert m.frequency_hz == 2.4e9
        assert m.levels[0].size_bytes == 32 * 1024
        assert m.levels[1].size_bytes == 256 * 1024
        assert m.llc.size_bytes == 12 * 1024 * 1024
        assert m.n_cores == 12

    def test_levels_ordered(self):
        m = XEON_E5645
        sizes = [l.size_bytes for l in m.levels]
        assert sizes == sorted(sizes)
        latencies = [l.latency_cycles for l in m.levels]
        assert latencies == sorted(latencies)
        rates = [l.seq_cycles_per_byte for l in m.levels]
        assert rates == sorted(rates)
        assert m.dram_latency_cycles > m.llc.latency_cycles

    def test_cycles_to_seconds(self):
        assert XEON_E5645.cycles_to_seconds(2.4e9) == pytest.approx(1.0)


class TestLlcSharing:
    def test_with_llc_bytes_shrinks_only_llc(self):
        shared = XEON_E5645.with_llc_bytes(XEON_E5645.llc.size_bytes // 4)
        assert shared.llc.size_bytes == 3 * 1024 * 1024
        assert shared.levels[0].size_bytes == 32 * 1024
        assert shared.levels[1].size_bytes == 256 * 1024
        assert shared.llc.latency_cycles == \
            XEON_E5645.llc.latency_cycles

    def test_original_untouched(self):
        XEON_E5645.with_llc_bytes(1024)
        assert XEON_E5645.llc.size_bytes == 12 * 1024 * 1024

    def test_other_parameters_preserved(self):
        shared = XEON_E5645.with_llc_bytes(1 << 20)
        assert shared.dram_bandwidth_bytes_per_sec == \
            XEON_E5645.dram_bandwidth_bytes_per_sec
        assert shared.dtlb_entries == XEON_E5645.dtlb_entries

    def test_frozen(self):
        with pytest.raises(Exception):
            XEON_E5645.frequency_hz = 1.0
