"""Shared fixtures: tiny deterministic programs and benchmarks."""

import numpy as np
import pytest

from repro.target import (Executor, ProgramSpec, generate_program,
                          generate_seed_corpus)


@pytest.fixture(scope="session")
def tiny_program():
    """A small program with every guard kind and a few crash sites."""
    spec = ProgramSpec(
        name="tiny", n_core_edges=400, input_len=128, seed=7,
        magic_subtree_edges=120, magic_subtree_count=3,
        magic_leaf_edges=10, never_leaf_edges=5,
        n_crash_sites=6, n_magic_crash_sites=3)
    return generate_program(spec)


@pytest.fixture(scope="session")
def tiny_executor(tiny_program):
    return Executor(tiny_program)


@pytest.fixture(scope="session")
def tiny_seeds(tiny_program):
    return generate_seed_corpus(tiny_program, 10, seed=3)


@pytest.fixture()
def rng():
    return np.random.default_rng(np.random.PCG64(1234))
