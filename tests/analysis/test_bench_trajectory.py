"""Parity between recorded BENCH_*.json artifacts and the
EXPERIMENTS.md bench-trajectory table (see
repro.analysis.bench_trajectory)."""

import json
from pathlib import Path

import pytest

from repro.analysis.bench_trajectory import (
    BenchRecord, documented_trajectory_table, load_bench_records,
    render_trajectory_table)
from repro.core.errors import ExperimentError

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLoader:
    def test_loads_bench_5(self):
        records = load_bench_records(REPO_ROOT)
        assert any(r.pr == 5 for r in records)
        (rec,) = [r for r in records if r.pr == 5]
        assert rec.bench == "batch_engine"
        assert rec.serial_execs_per_sec == pytest.approx(5515.3)
        assert rec.batched_execs_per_sec == pytest.approx(13780.3)
        assert rec.speedup == pytest.approx(2.499)
        assert rec.identical_results is True
        assert "zlib/bigmap @ 64k" in rec.workload

    def test_records_are_pr_ordered(self):
        records = load_bench_records(REPO_ROOT)
        assert [r.pr for r in records] == sorted(r.pr for r in records)

    def test_default_root_resolves_to_repo(self):
        assert load_bench_records() == load_bench_records(REPO_ROOT)

    def test_heterogeneous_schemas_load_side_by_side(self, tmp_path):
        """BENCH_6 adds backend/workers/window; older artifacts lack
        them. One directory holding both generations must load."""
        common = {"bench": "batch_engine",
                  "workload": {"benchmark": "zlib", "fuzzer": "bigmap",
                               "map_size": 65536},
                  "execs": 20000, "serial_execs_per_sec": 100.0,
                  "batched_execs_per_sec": 300.0, "speedup": 3.0,
                  "identical_results": True}
        (tmp_path / "BENCH_5.json").write_text(json.dumps(common),
                                               encoding="utf-8")
        newer = dict(common, backend="mp", workers=2, window=8)
        (tmp_path / "BENCH_6.json").write_text(json.dumps(newer),
                                               encoding="utf-8")
        old, new = load_bench_records(tmp_path)
        assert (old.backend, old.workers, old.window) == (None,) * 3
        assert (new.backend, new.workers, new.window) == ("mp", 2, 8)
        assert "W=8" in new.workload and "W=" not in old.workload
        # Both generations render into the same table.
        table = render_trajectory_table([old, new])
        assert table.count("\n") == 3

    def test_loads_bench_6(self):
        records = load_bench_records(REPO_ROOT)
        (rec,) = [r for r in records if r.pr == 6]
        assert rec.window == 8
        assert rec.workers is not None
        assert rec.backend is not None
        assert rec.speedup >= 3.0
        assert rec.identical_results is True

    def test_missing_field_raises(self, tmp_path):
        (tmp_path / "BENCH_9.json").write_text(
            json.dumps({"bench": "x"}), encoding="utf-8")
        with pytest.raises(ExperimentError, match="missing field"):
            load_bench_records(tmp_path)

    def test_corrupt_artifact_raises(self, tmp_path):
        (tmp_path / "BENCH_9.json").write_text("{not json",
                                               encoding="utf-8")
        with pytest.raises(ExperimentError, match="unreadable"):
            load_bench_records(tmp_path)

    def test_non_matching_files_ignored(self, tmp_path):
        (tmp_path / "BENCH_notes.json").write_text("{}",
                                                   encoding="utf-8")
        assert load_bench_records(tmp_path) == []


class TestTableParity:
    def test_documented_table_matches_artifacts(self):
        # The satellite contract: the doc table and the recorded JSON
        # artifacts cannot diverge. Regenerate the table from the
        # artifacts and hold EXPERIMENTS.md to it byte-exactly.
        records = load_bench_records(REPO_ROOT)
        assert records, "no BENCH_*.json artifacts at the repo root"
        expected = render_trajectory_table(records)
        documented = documented_trajectory_table(
            REPO_ROOT / "EXPERIMENTS.md")
        assert documented == expected

    def test_render_flags_nonidentical_results(self):
        record = BenchRecord(
            pr=9, path=Path("BENCH_9.json"), bench="x",
            workload="w", serial_execs_per_sec=1.0,
            batched_execs_per_sec=2.0, speedup=2.0,
            identical_results=False)
        assert "| NO |" in render_trajectory_table([record])

    def test_missing_table_raises(self, tmp_path):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(ExperimentError, match="no bench"):
            documented_trajectory_table(doc)
