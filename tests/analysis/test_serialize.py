"""Unit tests for result/corpus persistence."""

import json

import pytest

from repro.analysis import (load_corpus, load_result, result_from_dict,
                            result_to_dict, save_corpus, save_result)
from repro.fuzzer import CampaignConfig, run_campaign
from repro.target import get_benchmark


@pytest.fixture(scope="module")
def result():
    built = get_benchmark("libpng").build(scale=0.15, seed_scale=1.0)
    return run_campaign(CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 16,
        scale=0.15, seed_scale=1.0, virtual_seconds=0.2,
        max_real_execs=500, rng_seed=1), built=built)


class TestResultRoundTrip:
    def test_dict_round_trip_without_corpus(self, result):
        record = result_to_dict(result)
        clone = result_from_dict(record)
        assert clone.benchmark == result.benchmark
        assert clone.execs == result.execs
        assert clone.throughput == result.throughput
        assert clone.coverage_curve == result.coverage_curve
        assert clone.op_cycles == result.op_cycles
        assert clone.corpus == []

    def test_dict_round_trip_with_corpus(self, result):
        record = result_to_dict(result, include_corpus=True)
        clone = result_from_dict(record)
        assert clone.corpus == result.corpus

    def test_record_is_json_serializable(self, result):
        text = json.dumps(result_to_dict(result, include_corpus=True))
        assert "libpng" in text

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path, include_corpus=True)
        clone = load_result(path)
        assert clone.discovered_locations == \
            result.discovered_locations
        assert clone.corpus == result.corpus

    def test_version_checked(self, result):
        record = result_to_dict(result)
        record["format_version"] = 999
        with pytest.raises(ValueError):
            result_from_dict(record)

    def test_mean_shape_preserved(self, result):
        clone = result_from_dict(result_to_dict(result))
        assert clone.mean_shape.traversals == \
            result.mean_shape.traversals
        assert clone.mean_shape.used_bytes == \
            result.mean_shape.used_bytes


class TestCorpusExport:
    def test_afl_queue_layout(self, result, tmp_path):
        paths = save_corpus(result.corpus, tmp_path / "queue")
        assert len(paths) == result.corpus_size
        assert paths[0].name == "id:000000"
        loaded = load_corpus(tmp_path / "queue")
        assert loaded == list(result.corpus)

    def test_empty_corpus(self, tmp_path):
        assert save_corpus([], tmp_path / "queue") == []
        assert load_corpus(tmp_path / "queue") == []

    def test_order_preserved(self, tmp_path):
        corpus = [bytes([i]) * 4 for i in range(15)]
        save_corpus(corpus, tmp_path / "q")
        assert load_corpus(tmp_path / "q") == corpus
