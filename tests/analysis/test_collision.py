"""Unit tests for collision-rate math (Equation 1, birthday bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.collision import (collision_probability,
                                      collision_rate,
                                      collision_rate_table,
                                      expected_distinct_keys,
                                      keys_for_collision_probability)


class TestEquation1:
    def test_zero_keys(self):
        assert collision_rate(1 << 16, 0) == 0.0

    def test_one_key_never_collides(self):
        assert collision_rate(1 << 16, 1) == pytest.approx(0.0, abs=1e-9)

    def test_paper_table2_values(self):
        """Table II footnote 2 derives its column from Equation 1."""
        assert 100 * collision_rate(1 << 16, 40_948) == \
            pytest.approx(25.64, abs=0.05)
        assert 100 * collision_rate(1 << 16, 131_677) == \
            pytest.approx(56.90, abs=0.05)
        assert 100 * collision_rate(1 << 16, 722) == \
            pytest.approx(0.55, abs=0.02)

    def test_paper_section3_50k_at_64k(self):
        """§III: 'a 64kB map is subjected to ~30% collision rate' for
        real-world applications (up to 50k edges)."""
        assert 0.25 < collision_rate(1 << 16, 50_000) < 0.35

    def test_paper_composition_pressure(self):
        """§V-C: 212k-603k keys on 64 kB gives ~87% collisions; Table
        III's 2 MB column averages ~7.5%."""
        assert collision_rate(1 << 16, 400_000) > 0.80
        assert 100 * collision_rate(1 << 21, 300_000) == \
            pytest.approx(7.0, abs=1.5)

    @given(st.integers(10, 1 << 22), st.integers(1, 1 << 18))
    @settings(max_examples=100)
    def test_bounds(self, space, keys):
        rate = collision_rate(space, keys)
        assert 0.0 <= rate <= 1.0

    def test_monotone_in_keys(self):
        rates = [collision_rate(1 << 16, n)
                 for n in (100, 1_000, 10_000, 100_000)]
        assert rates == sorted(rates)

    def test_monotone_in_space(self):
        rates = [collision_rate(size, 50_000)
                 for size in (1 << 16, 1 << 18, 1 << 21, 1 << 23)]
        assert rates == sorted(rates, reverse=True)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            collision_rate(0, 5)
        with pytest.raises(ValueError):
            collision_rate(10, -1)

    def test_monte_carlo_agreement(self):
        """Equation 1 against an actual uniform-draw simulation."""
        space, keys, trials = 4_096, 2_000, 40
        rng = np.random.default_rng(7)
        rates = []
        for _ in range(trials):
            draws = rng.integers(0, space, size=keys)
            distinct = np.unique(draws).size
            rates.append((keys - distinct) / keys)
        assert np.mean(rates) == pytest.approx(
            collision_rate(space, keys), abs=0.01)


class TestExpectedDistinct:
    def test_matches_used_key_simulation(self):
        """BigMap's used_key converges to H(1-(1-1/H)^n)."""
        space, keys = 1 << 12, 3_000
        rng = np.random.default_rng(1)
        measured = np.mean([
            np.unique(rng.integers(0, space, size=keys)).size
            for _ in range(30)])
        assert measured == pytest.approx(
            expected_distinct_keys(space, keys), rel=0.01)

    def test_relationship_to_collision_rate(self):
        space, keys = 1 << 16, 30_000
        distinct = expected_distinct_keys(space, keys)
        rate = collision_rate(space, keys)
        assert distinct / keys == pytest.approx(1 - rate, rel=1e-9)


class TestBirthday:
    def test_paper_300_ids_at_64k(self):
        """§III: '~50% after assigning only 300 IDs' to a 64 kB map."""
        n = keys_for_collision_probability(1 << 16, 0.5)
        assert 295 <= n <= 310
        assert collision_probability(1 << 16, 300) == \
            pytest.approx(0.5, abs=0.01)

    def test_certain_collision_beyond_space(self):
        assert collision_probability(8, 9) == 1.0

    def test_trivial_cases(self):
        assert collision_probability(100, 0) == 0.0
        assert collision_probability(100, 1) == 0.0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            keys_for_collision_probability(100, 1.5)


class TestFigureGrid:
    def test_table_shape(self):
        grid = collision_rate_table([1 << 16, 1 << 20], [1_000, 10_000])
        assert len(grid) == 2 and len(grid[0]) == 2
        assert grid[0][0] > grid[0][1], "bigger map, lower rate"
        assert grid[1][0] > grid[0][0], "more keys, higher rate"
