"""Unit tests for bias-free coverage evaluation and report rendering."""

import numpy as np
import pytest

from repro.analysis import (arithmetic_mean, average_speedup,
                            coverage_growth, covered_edge_mask,
                            evaluate_corpus, geometric_mean,
                            render_bar_block, render_series,
                            render_table, speedups)
from repro.target import Executor


class TestCoverageEval:
    def test_empty_corpus(self, tiny_program):
        assert evaluate_corpus(tiny_program, []) == 0

    def test_union_over_corpus(self, tiny_program, tiny_seeds):
        ex = Executor(tiny_program)
        individual = [set(ex.execute(s).edges.tolist())
                      for s in tiny_seeds]
        union = set().union(*individual)
        assert evaluate_corpus(tiny_program, tiny_seeds,
                               executor=ex) == len(union)

    def test_growth_curve_monotone(self, tiny_program, tiny_seeds):
        curve = coverage_growth(tiny_program, tiny_seeds)
        assert len(curve) == len(tiny_seeds)
        values = [v for _, v in curve]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert curve[-1][1] == evaluate_corpus(tiny_program, tiny_seeds)

    def test_mask_matches_count(self, tiny_program, tiny_seeds):
        mask = covered_edge_mask(tiny_program, tiny_seeds)
        assert mask.shape == (tiny_program.n_edges,)
        assert int(mask.sum()) == evaluate_corpus(tiny_program,
                                                  tiny_seeds)

    def test_collision_free(self, tiny_program, tiny_seeds):
        """The evaluation counts *program edges*, so two edges whose
        instrumented keys would collide still count as two."""
        ex = Executor(tiny_program)
        result = ex.execute(tiny_seeds[0])
        assert evaluate_corpus(tiny_program, [tiny_seeds[0]],
                               executor=ex) == result.n_edges


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    def test_geometric(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 4]) == pytest.approx(4.0), \
            "non-positive entries are excluded"

    def test_speedups(self):
        base = {"a": 10.0, "b": 5.0, "c": 0.0}
        new = {"a": 20.0, "b": 5.0, "d": 1.0}
        ratios = speedups(base, new)
        assert ratios == {"a": 2.0, "b": 1.0}
        assert average_speedup(base, new) == pytest.approx(1.5)


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["name", "value"],
                            [["alpha", 1_234], ["b", 5.678]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in text and "1,234" in text and "5.68" in text

    def test_series(self):
        text = render_series("s", [(1, 2.0), (3, 4.0)], x_label="k",
                             y_label="rate")
        assert "k -> rate" in text
        assert text.count("\n") == 2

    def test_bar_block(self):
        text = render_bar_block("B", {"x": 10.0, "y": 5.0}, unit="/s")
        assert "####" in text
        x_line = next(l for l in text.splitlines() if "x" in l)
        y_line = next(l for l in text.splitlines() if "y" in l)
        assert x_line.count("#") > y_line.count("#")

    def test_bar_block_empty(self):
        assert "(empty)" in render_bar_block("B", {})
