"""Smoke and shape tests for the experiment harnesses.

Each harness runs at a micro profile (far below ``quick``) on a reduced
benchmark subset — the goal is to verify the plumbing end-to-end and
the qualitative shapes, not the paper's magnitudes (see EXPERIMENTS.md
for those).
"""

import pytest

from repro.experiments.common import (MAP_SIZE_LABELS, BenchmarkCache,
                                      Profile, get_profile,
                                      throughput_probe)

MICRO = Profile(name="micro", scale=0.04, seed_scale=0.02,
                throughput_execs=150, campaign_virtual_seconds=0.8,
                campaign_max_execs=1_200, composition_scale=0.02,
                replicas=1)


@pytest.fixture(scope="module")
def cache():
    return BenchmarkCache()


class TestProfiles:
    def test_known_profiles(self):
        for name in ("quick", "default", "full"):
            profile = get_profile(name)
            assert profile.scale > 0
        with pytest.raises(ValueError):
            get_profile("warp")

    def test_cache_reuses_builds(self, cache):
        a = cache.get("zlib", 0.1, 0.1)
        b = cache.get("zlib", 0.1, 0.1)
        assert a is b
        c = cache.get("zlib", 0.2, 0.1)
        assert c is not a


class TestFig2:
    def test_exact_math_and_report(self):
        from repro.experiments.fig2_collision import compute, run
        grid = compute()
        assert len(grid) == 8 and len(grid[0]) == 10
        # Rates fall along each row (bigger maps).
        for row in grid:
            assert row == sorted(row, reverse=True)
        report = run()
        assert "Figure 2" in report and "64k" in report


class TestTable2:
    def test_rows_and_checkpoints(self):
        from repro.experiments.table2_benchmarks import compute, run
        rows = compute(MICRO)
        assert len(rows) == 19
        by_name = {r["benchmark"]: r for r in rows}
        assert by_name["sqlite3"]["collision_rate_64k"] == \
            pytest.approx(25.64, abs=0.1)
        assert "Table II" in run(MICRO)


class TestFig3:
    def test_composition_shape(self, cache):
        from repro.experiments.fig3_runtime import compute
        data = compute(MICRO, cache)
        assert set(data) == {"libpng", "sqlite3", "gvn", "bloaty",
                             "openssl", "php"}
        for name, sizes in data.items():
            small = sizes["64k"]
            big = sizes["8M"]
            map_small = (small["classify"] + small["compare"] +
                         small["reset"])
            map_big = big["classify"] + big["compare"] + big["reset"]
            assert map_big > map_small * 10, name
            # At 64k, execution dominates.
            assert small["execution"] > map_small, name


class TestFig6:
    def test_speedups_monotone_in_map_size(self, cache):
        from repro.experiments.fig6_throughput import (compute,
                                                       speedup_summary)
        data = compute(MICRO, cache, benchmarks=["libpng", "sqlite3"])
        speeds = speedup_summary(data)
        ordered = [speeds[lbl] for lbl in ("64k", "256k", "2M", "8M")]
        assert ordered == sorted(ordered)
        assert ordered[-1] > 5.0


class TestFig7:
    def test_true_coverage_reported(self, cache):
        from repro.experiments.fig7_edge_coverage import compute
        data = compute(MICRO, cache, benchmarks=["libpng"])
        values = data["libpng"]
        for fuzzer in ("afl", "bigmap"):
            for label in MAP_SIZE_LABELS.values():
                assert values[fuzzer][label] > 0


class TestFig9:
    def test_scaling_shapes(self, cache):
        from repro.experiments.fig9_scalability import compute
        data = compute(MICRO, cache, benchmarks=["sqlite3"])
        rates = data["sqlite3"]
        assert rates["bigmap"][12] > rates["bigmap"][1] * 8
        assert rates["afl"][12] < rates["afl"][1] * 6
        # Speedup grows with k.
        s4 = rates["bigmap"][4] / rates["afl"][4]
        s12 = rates["bigmap"][12] / rates["afl"][12]
        assert s12 > s4


class TestFig10:
    def test_parallel_crash_pipeline(self, cache):
        from repro.experiments.fig10_parallel_crashes import compute
        data = compute(MICRO, cache, benchmarks=["licm"],
                       instance_counts=(1, 2))
        assert set(data["licm"]) == {"afl", "bigmap"}
        for fuzzer in ("afl", "bigmap"):
            assert set(data["licm"][fuzzer]) == {1, 2}


class TestRunnerCli:
    def test_list(self, capsys):
        from repro.experiments.runner import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table3" in out

    def test_unknown_experiment(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig2_via_cli(self, capsys):
        from repro.experiments.runner import main
        assert main(["fig2", "--profile", "quick"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_list_includes_fault_tolerance(self, capsys):
        from repro.experiments.runner import main
        assert main(["--list"]) == 0
        assert "fault-tolerance" in capsys.readouterr().out

    def test_resume_requires_out(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig2", "--resume"])


class TestRunnerFaultHandling:
    """--keep-going / --resume semantics, exercised against a stubbed
    experiment registry so no real harness runs."""

    @pytest.fixture()
    def registry(self, monkeypatch):
        from repro.experiments import runner

        def ok(name):
            return lambda profile, cache=None: f"{name} report"

        def broken(profile, cache=None):
            raise ValueError("synthetic harness failure")

        experiments = {"good1": ok("good1"), "bad": broken,
                       "good2": ok("good2")}
        monkeypatch.setattr(runner, "EXPERIMENTS", experiments)
        monkeypatch.setattr(runner, "ORDER",
                            ("good1", "bad", "good2"))
        return runner

    def test_failure_stops_run_by_default(self, registry, tmp_path,
                                          capsys):
        assert registry.main(["all", "--profile", "quick",
                              "--out", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "synthetic harness failure" in captured.err
        # good1 ran before the failure; good2 never did.
        assert (tmp_path / "good1.txt").exists()
        assert not (tmp_path / "good2.txt").exists()

    def test_keep_going_runs_rest_and_fails_at_end(self, registry,
                                                   tmp_path, capsys):
        assert registry.main(["all", "--profile", "quick",
                              "--keep-going",
                              "--out", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "synthetic harness failure" in captured.err
        assert "1 experiment(s) failed: bad" in captured.err
        # Reports exist for every non-failing experiment.
        assert (tmp_path / "good1.txt").read_text().startswith("good1")
        assert (tmp_path / "good2.txt").read_text().startswith("good2")
        assert not (tmp_path / "bad.txt").exists()

    def test_resume_skips_existing_reports(self, registry, tmp_path,
                                           capsys):
        (tmp_path / "good1.txt").write_text("stale report\n")
        assert registry.main(["good1", "good2", "--profile", "quick",
                              "--resume", "--out",
                              str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[skip] good1" in out
        # The existing report is untouched; the missing one was made.
        assert (tmp_path / "good1.txt").read_text() == "stale report\n"
        assert (tmp_path / "good2.txt").exists()

    def test_error_chains_original_cause(self, registry):
        from repro.core.errors import ExperimentError
        from repro.experiments.common import get_profile
        with pytest.raises(ExperimentError) as excinfo:
            registry.run_experiment("bad", get_profile("quick"))
        assert isinstance(excinfo.value.__cause__, ValueError)
