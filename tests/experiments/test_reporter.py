"""Reporter: one output funnel, three modes, failures always on the
error stream."""

import io
import json

import pytest

from repro.experiments.reporter import JSON, QUIET, TEXT, Reporter


def make(mode):
    out, err = io.StringIO(), io.StringIO()
    return Reporter(mode, stream=out, err_stream=err), out, err


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown reporter mode"):
        Reporter("verbose")


class TestText:
    def test_completed_prints_banner_and_report(self):
        reporter, out, err = make(TEXT)
        reporter.completed("fig6", "quick", 1.25, "the report body")
        text = out.getvalue()
        assert "fig6" in text
        assert "profile=quick" in text
        assert "the report body" in text
        assert err.getvalue() == ""

    def test_failed_goes_to_error_stream(self):
        reporter, out, err = make(TEXT)
        reporter.failed("fig6", 2.0, ValueError("boom"))
        assert "FAILED" in err.getvalue()
        assert "boom" in err.getvalue()
        assert out.getvalue() == ""

    def test_summary_with_keep_going_hint(self):
        reporter, _, err = make(TEXT)
        reporter.summary(["fig6"], keep_going=False)
        assert "--keep-going" in err.getvalue()
        reporter2, _, err2 = make(TEXT)
        reporter2.summary(["fig6", "fig7"])
        assert "2 experiment(s) failed" in err2.getvalue()
        assert "--keep-going" not in err2.getvalue()

    def test_no_failures_no_summary(self):
        reporter, out, err = make(TEXT)
        reporter.summary([])
        assert out.getvalue() == "" and err.getvalue() == ""


class TestQuiet:
    def test_one_line_per_experiment(self):
        reporter, out, _ = make(QUIET)
        reporter.completed("fig6", "quick", 1.25, "body not shown")
        assert out.getvalue() == "[ok]   fig6 (1.2s)\n"

    def test_failed_line(self):
        reporter, out, err = make(QUIET)
        reporter.failed("fig6", 2.0, ValueError("boom"))
        assert out.getvalue() == "[FAIL] fig6 (2.0s)\n"
        assert "boom" in err.getvalue()


class TestJson:
    def parse(self, out):
        return [json.loads(line) for line in
                out.getvalue().splitlines()]

    def test_records_are_canonical_json(self):
        reporter, out, _ = make(JSON)
        reporter.listing("fig6", "throughput")
        reporter.skipped("fig7", "report exists")
        reporter.completed("fig6", "quick", 1.0, "body")
        reporter.info("note")
        records = self.parse(out)
        assert [r["kind"] for r in records] == [
            "experiment", "skip", "completed", "info"]
        for line in out.getvalue().splitlines():
            assert list(json.loads(line)) == sorted(json.loads(line))

    def test_completed_carries_report(self):
        reporter, out, _ = make(JSON)
        reporter.completed("fig6", "quick", 1.0, "body")
        (record,) = self.parse(out)
        assert record["report"] == "body"
        assert record["elapsed_seconds"] == 1.0

    def test_failure_record_on_stdout_traceback_on_stderr(self):
        reporter, out, err = make(JSON)
        reporter.failed("fig6", 2.0, ValueError("boom"))
        (record,) = self.parse(out)
        assert record["kind"] == "failed"
        assert "boom" in record["error"]
        assert "boom" in err.getvalue()
