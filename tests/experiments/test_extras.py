"""Smoke tests for the extension experiments (collafl, dedup-bias,
ensemble)."""

import pytest

from repro.experiments.common import BenchmarkCache, Profile

MICRO = Profile(name="micro", scale=0.03, seed_scale=0.02,
                throughput_execs=120, campaign_virtual_seconds=0.6,
                campaign_max_execs=900, composition_scale=0.02,
                replicas=1)


@pytest.fixture(scope="module")
def cache():
    return BenchmarkCache()


class TestCollAflExtension:
    def test_combination_wins(self, cache):
        from repro.experiments.extra_collafl import compute
        data = compute(MICRO, cache)
        assert data["collafl_direct_collisions"] == 0
        # BigMap on the CollAFL-sized map must beat the flat map.
        assert data["throughput_bigmap"] > data["throughput_afl"]
        # The hash scheme collides where CollAFL doesn't.
        assert data["hash_realized_distinct"] <= data["edges"]
        assert data["collafl_distinct"] >= \
            data["hash_realized_distinct"]

    def test_report_renders(self, cache):
        from repro.experiments.extra_collafl import run
        report = run(MICRO, cache)
        assert "CollAFL" in report and "speedup" in report


class TestDedupBiasExtension:
    def test_both_counters_reported(self, cache):
        from repro.experiments.extra_dedup_bias import compute
        rows = compute(MICRO, cache, benchmarks=["licm"])
        assert len(rows) == 4  # four map sizes
        for row in rows:
            assert row["crashwalk"] >= 0
            assert row["afl_dedup"] >= 0

    def test_report_renders(self, cache):
        from repro.experiments.extra_dedup_bias import run
        assert "dedup" in run(MICRO, cache)


class TestEnsembleExtension:
    def test_both_strategies_run(self, cache):
        from repro.experiments.extra_ensemble import compute
        data = compute(MICRO, cache)
        for label in ("stacked", "ensemble"):
            assert data[label]["execs"] > 0
            assert data[label]["true_coverage"] > 0

    def test_report_renders(self, cache):
        from repro.experiments.extra_ensemble import run
        report = run(MICRO, cache)
        assert "stacked" in report and "ensemble" in report


class TestRunnerKnowsExtensions:
    def test_registered(self):
        from repro.experiments.runner import EXPERIMENTS, ORDER
        for name in ("collafl", "dedup-bias", "ensemble"):
            assert name in EXPERIMENTS
            assert name in ORDER
