"""Supervised parallel sessions under injected faults.

Covers the acceptance properties of the fault-tolerance subsystem:
sessions survive crashed/stalled instances, restarts resume from
checkpoints with backoff, corrupt sync payloads are quarantined, seeded
plans replay deterministically, and the empty plan is a strict no-op.
"""

import pytest

from repro.faults import (CORRUPT_SYNC, CRASH, SLOW, STALL, FaultEvent,
                          FaultPlan, RestartPolicy)
from repro.core.errors import FaultPlanError
from repro.fuzzer import CampaignConfig, ParallelSession
from repro.target import get_benchmark

#: Virtual budget large enough for several sync slices.
BUDGET = 0.4
SYNC = BUDGET / 8.0


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def config(**kwargs):
    defaults = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 18, scale=0.25, seed_scale=1.0,
                    virtual_seconds=BUDGET, max_real_execs=100_000,
                    rng_seed=3)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


def session(built, k=4, **kwargs):
    kwargs.setdefault("sync_interval", SYNC)
    return ParallelSession(config(), k, built=built, **kwargs)


def summary_key(summary):
    return (summary.total_execs, summary.discovered_locations,
            summary.unique_crashes,
            tuple(r.execs for r in summary.per_instance),
            tuple(summary.instance_restarts),
            tuple(summary.instance_faults))


class TestEmptyPlanIsIdentity:
    def test_no_plan_empty_plan_equivalent(self, built):
        plain = session(built, 2).run()
        empty = session(built, 2, fault_plan=FaultPlan()).run()
        assert summary_key(plain) == summary_key(empty)
        assert empty.total_faults == 0
        assert empty.total_restarts == 0
        assert empty.lost_instances == []
        assert empty.quarantined_imports == 0


class TestDeterminism:
    def test_seeded_plan_replays_identically(self, built):
        plan = FaultPlan.generate(seed=99, n_instances=4,
                                  horizon=BUDGET, rate=1.5)
        policy = RestartPolicy(backoff_base=SYNC / 2)
        a = session(built, fault_plan=plan, restart_policy=policy).run()
        b = session(built, fault_plan=plan, restart_policy=policy).run()
        assert summary_key(a) == summary_key(b)


class TestCrashRecovery:
    def test_crash_one_of_four_recovers(self, built):
        """The acceptance scenario: one instance crashes mid-session,
        restarts from its checkpoint after backoff, and the session's
        final discovery stays within the faulted instance's lost slice
        of the no-fault run."""
        nofault = session(built).run()
        plan = FaultPlan([FaultEvent(time=BUDGET / 2, instance=1,
                                     kind=CRASH)])
        policy = RestartPolicy(max_restarts=3, backoff_base=SYNC / 4)
        faulted = session(built, fault_plan=plan,
                          restart_policy=policy).run()

        # The session completed with a well-formed summary.
        assert faulted.n_instances == 4
        assert len(faulted.per_instance) == 4
        # The crashed instance restarted (with backoff) and was not lost.
        assert faulted.instance_faults[1] == 1
        assert faulted.instance_restarts[1] == 1
        assert faulted.per_instance[1].restarts == 1
        assert faulted.lost_instances == []
        # Recovery bound: at worst the faulted instance forfeits its
        # crashed slice plus downtime; the synced survivors retain the
        # rest, so global discovery stays close to the no-fault run.
        lost_fraction = (SYNC + policy.backoff_base) / BUDGET
        floor = nofault.discovered_locations * (1.0 - 2 * lost_fraction)
        assert faulted.discovered_locations >= floor
        # The restarted instance resumed from its checkpoint, not from
        # the seed corpus: it kept fuzzing and reported work.
        assert faulted.per_instance[1].execs > 0

    def test_restart_budget_exhaustion_loses_instance(self, built):
        plan = FaultPlan([FaultEvent(time=BUDGET / 4, instance=2,
                                     kind=CRASH)])
        faulted = session(built, fault_plan=plan,
                          restart_policy=RestartPolicy(max_restarts=0)
                          ).run()
        assert faulted.lost_instances == [2]
        assert faulted.instance_restarts[2] == 0
        # Survivors carried the session to completion.
        assert len(faulted.per_instance) == 4
        assert faulted.total_execs > 0
        survivors = [r for i, r in enumerate(faulted.per_instance)
                     if i != 2]
        assert all(r.execs > 0 for r in survivors)

    def test_backoff_delays_second_restart(self, built):
        """Two crashes: the second restart waits longer than the first."""
        plan = FaultPlan([FaultEvent(time=BUDGET * 0.3, instance=0,
                                     kind=CRASH),
                          FaultEvent(time=BUDGET * 0.6, instance=0,
                                     kind=CRASH)])
        policy = RestartPolicy(max_restarts=5, backoff_base=SYNC / 4,
                               backoff_factor=2.0)
        faulted = session(built, fault_plan=plan,
                          restart_policy=policy).run()
        assert faulted.instance_restarts[0] == 2
        assert policy.backoff(1) == 2 * policy.backoff(0)


class TestStallRecovery:
    def test_stalled_instance_detected_and_restarted(self, built):
        plan = FaultPlan([FaultEvent(time=BUDGET * 0.4, instance=3,
                                     kind=STALL)])
        faulted = session(built, fault_plan=plan,
                          restart_policy=RestartPolicy(
                              backoff_base=SYNC / 4)).run()
        assert faulted.instance_faults[3] == 1
        assert faulted.instance_restarts[3] >= 1
        assert faulted.lost_instances == []


class TestSlowFault:
    def test_slow_window_reduces_instance_execs(self, built):
        plan = FaultPlan([FaultEvent(time=0.0, instance=0, kind=SLOW,
                                     duration=BUDGET, magnitude=8.0)])
        slowed = session(built, 2, fault_plan=plan).run()
        normal = session(built, 2).run()
        # Instance 0 paid 8x cycles per exec for the whole budget.
        assert slowed.per_instance[0].execs < \
            0.5 * normal.per_instance[0].execs
        # Instance 1 was unaffected by instance 0's slowdown window.
        assert slowed.instance_faults == [1, 0]


class TestCorruptSync:
    def test_corrupt_payloads_quarantined(self, built):
        plan = FaultPlan([FaultEvent(time=SYNC * 0.5, instance=0,
                                     kind=CORRUPT_SYNC)])
        faulted = session(built, 2, fault_plan=plan).run()
        assert faulted.instance_faults[0] == 1
        # The corrupted export was dropped, not imported.
        assert faulted.quarantined_imports > 0
        assert faulted.lost_instances == []


class TestUnplannedFailures:
    def test_exception_in_one_instance_quarantines_it(self, built):
        """Without checkpointing, a raising instance is lost — but the
        session survives and reports the failure."""
        sess = session(built, 2)
        boom = RuntimeError("simulated OOM kill")

        def exploding_step(deadline):
            raise boom

        # Sabotage instance 1 after its dry run by patching step_until.
        original_start = sess.instances[1].start

        def start_then_sabotage():
            original_start()
            sess.instances[1].step_until = exploding_step

        sess.instances[1].start = start_then_sabotage
        summary = sess.run()
        assert summary.lost_instances == [1]
        assert summary.unplanned_failures
        assert "simulated OOM kill" in summary.unplanned_failures[0]
        assert summary.per_instance[0].execs > 0

    def test_exception_with_checkpointing_restarts(self, built):
        """With supervision active, a raising instance restores from
        its checkpoint and retries — and is lost only after the retry
        budget runs out."""
        sess = session(built, 2, fault_plan=FaultPlan(),
                       restart_policy=RestartPolicy(
                           max_restarts=2, backoff_base=SYNC / 4))
        original = sess.instances[1].step_until
        calls = {"n": 0}

        def flaky_step(deadline):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("transient fault")
            return original(deadline)

        sess.instances[1].step_until = flaky_step
        summary = sess.run()
        assert summary.instance_restarts[1] >= 1
        assert summary.lost_instances == []
        assert summary.unplanned_failures


class TestPlanValidation:
    def test_plan_addressing_missing_instance_rejected(self, built):
        plan = FaultPlan([FaultEvent(time=0.1, instance=7, kind=CRASH)])
        with pytest.raises(FaultPlanError):
            session(built, 2, fault_plan=plan)
