"""Unit tests for the mutation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer import Mutator
from repro.fuzzer.mutation import ARITH_MAX, INTERESTING_8


def make_mutator(seed=0, **kwargs):
    return Mutator(np.random.default_rng(np.random.PCG64(seed)),
                   **kwargs)


class TestHavoc:
    def test_deterministic_for_same_stream(self):
        a, b = make_mutator(7), make_mutator(7)
        data = bytes(range(64))
        for _ in range(20):
            assert a.havoc(data) == b.havoc(data)

    def test_usually_changes_input(self):
        mutator = make_mutator(1)
        data = bytes(64)
        changed = sum(mutator.havoc(data) != data for _ in range(50))
        assert changed >= 45

    def test_length_bounds(self):
        mutator = make_mutator(2, max_len=128, min_len=4)
        data = bytes(100)
        for _ in range(300):
            mutant = mutator.havoc(data)
            assert 4 <= len(mutant) <= 128

    def test_empty_input_handled(self):
        mutator = make_mutator(3)
        mutant = mutator.havoc(b"")
        assert len(mutant) >= 1

    def test_splice_mixes_partners(self):
        mutator = make_mutator(4)
        a = bytes([0xAA]) * 64
        b = bytes([0xBB]) * 64
        spliced_bytes = set()
        for _ in range(40):
            spliced_bytes.update(mutator.havoc(a, splice_with=b))
        assert 0xBB in spliced_bytes, "splice partner bytes never appear"

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            make_mutator(max_len=2, min_len=4)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=256), st.integers(0, 1000))
    def test_never_crashes_on_arbitrary_input(self, data, seed):
        """min_len only guards deletions — inputs that are already
        shorter may stay short, but mutants are never empty and never
        exceed the cap."""
        mutator = make_mutator(seed)
        mutant = mutator.havoc(data)
        assert isinstance(mutant, bytes)
        assert 1 <= len(mutant) <= max(mutator.max_len, len(data))


class TestDeterministicStage:
    def test_first_mutants_are_walking_bitflips(self):
        mutator = make_mutator(5)
        data = bytes([0x00, 0x00])
        mutants = []
        for i, m in enumerate(mutator.deterministic(data)):
            mutants.append(m)
            if i >= 15:
                break
        assert mutants[0] == bytes([0x01, 0x00])
        assert mutants[1] == bytes([0x02, 0x00])
        assert mutants[7] == bytes([0x80, 0x00])
        assert mutants[8] == bytes([0x00, 0x01])

    def test_max_mutants_truncates(self):
        mutator = make_mutator(5)
        stream = list(mutator.deterministic(bytes(8), max_mutants=10))
        assert len(stream) == 10

    def test_covers_arithmetic_and_interesting(self):
        mutator = make_mutator(5)
        data = bytes([50])
        mutants = set(mutator.deterministic(data))
        assert bytes([50 + 1]) in mutants
        assert bytes([(50 - ARITH_MAX) & 0xFF]) in mutants
        for value in INTERESTING_8.tolist():
            assert bytes([value]) in mutants

    def test_every_mutant_same_length_in_early_stages(self):
        """Bitflips and arithmetic never change the input length."""
        mutator = make_mutator(6)
        data = bytes(16)
        for m in mutator.deterministic(data, max_mutants=500):
            assert len(m) == 16
