"""Unit tests for the mutation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer import Mutator
from repro.fuzzer.mutation import ARITH_MAX, INTERESTING_8


def make_mutator(seed=0, **kwargs):
    return Mutator(np.random.default_rng(np.random.PCG64(seed)),
                   **kwargs)


class TestHavoc:
    def test_deterministic_for_same_stream(self):
        a, b = make_mutator(7), make_mutator(7)
        data = bytes(range(64))
        for _ in range(20):
            assert a.havoc(data) == b.havoc(data)

    def test_usually_changes_input(self):
        mutator = make_mutator(1)
        data = bytes(64)
        changed = sum(mutator.havoc(data) != data for _ in range(50))
        assert changed >= 45

    def test_length_bounds(self):
        mutator = make_mutator(2, max_len=128, min_len=4)
        data = bytes(100)
        for _ in range(300):
            mutant = mutator.havoc(data)
            assert 4 <= len(mutant) <= 128

    def test_empty_input_handled(self):
        mutator = make_mutator(3)
        mutant = mutator.havoc(b"")
        assert len(mutant) >= 1

    def test_splice_mixes_partners(self):
        mutator = make_mutator(4)
        a = bytes([0xAA]) * 64
        b = bytes([0xBB]) * 64
        spliced_bytes = set()
        for _ in range(40):
            spliced_bytes.update(mutator.havoc(a, splice_with=b))
        assert 0xBB in spliced_bytes, "splice partner bytes never appear"

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            make_mutator(max_len=2, min_len=4)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=256), st.integers(0, 1000))
    def test_never_crashes_on_arbitrary_input(self, data, seed):
        """min_len only guards deletions — inputs that are already
        shorter may stay short, but mutants are never empty and never
        exceed the cap."""
        mutator = make_mutator(seed)
        mutant = mutator.havoc(data)
        assert isinstance(mutant, bytes)
        assert 1 <= len(mutant) <= max(mutator.max_len, len(data))


class TestDeterministicStage:
    def test_first_mutants_are_walking_bitflips(self):
        mutator = make_mutator(5)
        data = bytes([0x00, 0x00])
        mutants = []
        for i, m in enumerate(mutator.deterministic(data)):
            mutants.append(m)
            if i >= 15:
                break
        assert mutants[0] == bytes([0x01, 0x00])
        assert mutants[1] == bytes([0x02, 0x00])
        assert mutants[7] == bytes([0x80, 0x00])
        assert mutants[8] == bytes([0x00, 0x01])

    def test_max_mutants_truncates(self):
        mutator = make_mutator(5)
        stream = list(mutator.deterministic(bytes(8), max_mutants=10))
        assert len(stream) == 10

    def test_covers_arithmetic_and_interesting(self):
        mutator = make_mutator(5)
        data = bytes([50])
        mutants = set(mutator.deterministic(data))
        assert bytes([50 + 1]) in mutants
        assert bytes([(50 - ARITH_MAX) & 0xFF]) in mutants
        for value in INTERESTING_8.tolist():
            assert bytes([value]) in mutants

    def test_every_mutant_same_length_in_early_stages(self):
        """Bitflips and arithmetic never change the input length."""
        mutator = make_mutator(6)
        data = bytes(16)
        for m in mutator.deterministic(data, max_mutants=500):
            assert len(m) == 16


class TestHavocBatch:
    def test_deterministic_for_same_stream(self):
        a, b = make_mutator(7), make_mutator(7)
        data = bytes(range(64))
        for _ in range(5):
            ba = a.havoc_batch(data, 16, splice_with=bytes(range(32)))
            bb = b.havoc_batch(data, 16, splice_with=bytes(range(32)))
            assert np.array_equal(ba.data, bb.data)
            assert np.array_equal(ba.lengths, bb.lengths)

    def test_zero_padding_invariant(self):
        mutator = make_mutator(3)
        for trial in range(10):
            batch = mutator.havoc_batch(bytes(range(40)), 32,
                                        splice_with=bytes(range(20)))
            for i in range(batch.n):
                tail = batch.data[i, int(batch.lengths[i]):]
                assert not tail.any(), f"trial {trial} row {i}"

    def test_length_bounds(self):
        mutator = make_mutator(5, max_len=128, min_len=4)
        for data_len in (1, 4, 40, 128):
            batch = mutator.havoc_batch(bytes(data_len), 24)
            assert batch.width <= 128
            # Deletes never shrink below min_len; shorter inputs can
            # only grow (as in scalar havoc).
            assert (batch.lengths >= min(data_len, 4)).all()
            assert (batch.lengths <= batch.width).all()

    def test_usually_changes_input(self):
        mutator = make_mutator(1)
        data = bytes(64)
        batch = mutator.havoc_batch(data, 50)
        changed = sum(batch.tobytes(i) != data for i in range(50))
        assert changed >= 45

    def test_rows_are_diverse(self):
        mutator = make_mutator(9)
        batch = mutator.havoc_batch(bytes(range(64)), 64)
        assert len({batch.tobytes(i) for i in range(64)}) >= 32

    def test_empty_input_yields_min_len_rows(self):
        mutator = make_mutator(2, min_len=4)
        batch = mutator.havoc_batch(b"", 8)
        assert (batch.lengths >= 4).all()
        assert any(batch.row(i).any() for i in range(batch.n))

    def test_splice_mixes_partner_bytes(self):
        mutator = make_mutator(11)
        data, partner = b"\x01" * 64, b"\x02" * 64
        batch = mutator.havoc_batch(data, 40, splice_with=partner)
        has_partner = sum(bool((batch.row(i) == 2).any())
                          for i in range(batch.n))
        assert has_partner >= 10

    def test_dictionary_tokens_appear(self):
        token = b"MAGICTOKEN"
        mutator = Mutator(np.random.default_rng(np.random.PCG64(4)),
                          dictionary=[token])
        batch = mutator.havoc_batch(bytes(64), 80)
        stamped = sum(token in batch.tobytes(i) for i in range(batch.n))
        assert stamped >= 5

    def test_row_views_match_tobytes(self):
        mutator = make_mutator(6)
        batch = mutator.havoc_batch(bytes(range(32)), 10)
        for i, view in enumerate(batch.rows()):
            assert view.tobytes() == batch.tobytes(i)
