"""Tests for the stepping/import campaign API and paper-level claims."""

import numpy as np
import pytest

from repro.fuzzer import Campaign, CampaignConfig, run_campaign
from repro.target import get_benchmark


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.3, seed_scale=1.0)


def config(**kwargs):
    defaults = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 16, scale=0.3, seed_scale=1.0,
                    virtual_seconds=1.0, max_real_execs=3_000,
                    rng_seed=7)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestSteppingApi:
    def test_step_until_requires_start(self, built):
        campaign = Campaign(config(), built=built)
        with pytest.raises(RuntimeError):
            campaign.step_until(0.5)

    def test_start_idempotent(self, built):
        campaign = Campaign(config(), built=built)
        campaign.start()
        execs = campaign.execs
        campaign.start()
        assert campaign.execs == execs

    def test_step_until_respects_deadline(self, built):
        campaign = Campaign(config(max_real_execs=1_000_000),
                            built=built)
        campaign.start()
        campaign.step_until(0.3)
        assert campaign.clock.seconds >= 0.3
        assert campaign.clock.seconds < 0.4  # one batch overshoot max

    def test_sliced_equals_total_budget(self, built):
        """Running in slices covers the same budget as one run.

        Slicing may cut an energy batch early (the next slice picks a
        fresh seed), so outcomes are statistically — not bitwise —
        equivalent."""
        whole = Campaign(config(), built=built)
        result_whole = whole.run()
        sliced = Campaign(config(), built=built)
        sliced.start()
        for deadline in np.linspace(0.2, 1.0, 5):
            sliced.step_until(float(deadline))
        result_sliced = sliced.finish()
        assert result_sliced.execs == result_whole.execs
        assert result_sliced.discovered_locations == pytest.approx(
            result_whole.discovered_locations, rel=0.1)

    def test_import_input_admits_new_coverage(self, built):
        donor = Campaign(config(rng_seed=1), built=built)
        donor_result = donor.run()
        receiver = Campaign(config(
            rng_seed=2, virtual_seconds=0.05, max_real_execs=200),
            built=built)
        receiver.start()
        before = len(receiver.pool)
        admitted = 0
        for data in donor_result.corpus:
            if receiver.import_input(data):
                admitted += 1
        assert len(receiver.pool) == before + admitted
        # The receiver must learn something from a longer campaign.
        assert admitted > 0

    def test_import_duplicate_rejected(self, built):
        campaign = Campaign(config(virtual_seconds=0.05,
                                   max_real_execs=200), built=built)
        campaign.start()
        seed_data = campaign.pool.seeds[0].data
        assert campaign.import_input(seed_data) is False


class TestPaperClaims:
    def test_collisions_alias_map_locations_not_edges(self, built):
        """§V-B2, reproduced: *edge coverage* is relatively insensitive
        to collisions (bucketing blunts them), but the *map view*
        under-counts — at a 256-byte map, distinct lit locations are
        far fewer than the true edges the corpus covers."""
        tiny = run_campaign(config(
            map_size=1 << 8, compute_true_coverage=True), built=built)
        roomy = run_campaign(config(
            map_size=1 << 16, compute_true_coverage=True), built=built)
        # Map-space undercount at the tiny map (heavy aliasing).
        assert tiny.discovered_locations < tiny.true_edge_coverage
        # True coverage is within normal campaign variance of the
        # big-map run (the insensitivity claim).
        assert tiny.true_edge_coverage == pytest.approx(
            roomy.true_edge_coverage, rel=0.25)
        # The roomy map barely aliases.
        assert roomy.discovered_locations >= \
            0.9 * roomy.true_edge_coverage

    def test_bigmap_used_key_tracks_expected_distinct(self, built):
        """used_key converges toward Equation 1's expected distinct
        keys for the realized pressure."""
        from repro.analysis import expected_distinct_keys
        result = run_campaign(config(map_size=1 << 12), built=built)
        # Pressure: distinct true edges found (≈ distinct raw keys).
        pressure = result.true_edge_coverage or \
            result.discovered_locations
        expected = expected_distinct_keys(1 << 12, max(pressure, 1))
        assert result.used_key <= (1 << 12)
        assert result.used_key == pytest.approx(expected, rel=0.4)

    def test_interesting_rate_decays(self, built):
        """Discovery slows over a campaign: the second half of the
        coverage curve grows less than the first half."""
        result = run_campaign(config(virtual_seconds=2.0,
                                     max_real_execs=6_000), built=built)
        curve = result.coverage_curve
        assert len(curve) >= 4
        mid = len(curve) // 2
        first_growth = curve[mid][1] - curve[0][1]
        second_growth = curve[-1][1] - curve[mid][1]
        assert second_growth <= first_growth
