"""Batched-vs-serial engine equivalence (the batch equivalence contract).

``batch_execution`` is an execution strategy, not a semantic change:
with the same config and RNG seed, the batched and serial engines must
produce bit-identical campaigns — same executions, same admitted corpus,
same coverage curves, same charged cycles, same crash/hang records, and
byte-identical checkpoints. DESIGN.md documents why this holds; these
tests pin it.
"""

import numpy as np
import pytest

from repro.fuzzer import Campaign, CampaignConfig, run_campaign
from repro.target import get_benchmark


def _config(fuzzer, benchmark, *, batch, rng_seed=3, **overrides):
    base = dict(benchmark=benchmark, fuzzer=fuzzer, map_size=1 << 16,
                scale=0.2, seed_scale=1.0, virtual_seconds=0.5,
                max_real_execs=3_000, rng_seed=rng_seed,
                batch_execution=batch)
    base.update(overrides)
    return CampaignConfig(**base)


def _assert_seeds_equal(a, b):
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert sa.seed_id == sb.seed_id
        assert sa.data == sb.data
        assert sa.exec_cycles == sb.exec_cycles
        assert sa.coverage_hash == sb.coverage_hash
        assert np.array_equal(sa.covered_locations, sb.covered_locations)
        assert sa.depth == sb.depth
        assert sa.found_at == sb.found_at
        assert sa.parent_id == sb.parent_id
        assert sa.favored == sb.favored
        assert sa.fuzzed == sb.fuzzed


def assert_checkpoints_equal(a, b):
    assert a.clock_cycles == b.clock_cycles
    assert a.execs == b.execs
    assert a.hangs == b.hangs
    assert a.unique_hangs == b.unique_hangs
    assert a.next_seed_id == b.next_seed_id
    assert a.rng_state == b.rng_state
    _assert_seeds_equal(a.seeds, b.seeds)
    assert a.top_rated == b.top_rated
    assert a.scheduler_cursor == b.scheduler_cursor
    assert a.queue_cycles == b.queue_cycles
    assert np.array_equal(a.virgin, b.virgin)
    assert a.crash_records.keys() == b.crash_records.keys()
    assert np.array_equal(a.afl_crash_virgin, b.afl_crash_virgin)
    assert a.afl_unique_crashes == b.afl_unique_crashes
    assert np.array_equal(a.tmout_virgin, b.tmout_virgin)
    assert a.tmout_unique_crashes == b.tmout_unique_crashes
    assert a.op_cycles == b.op_cycles
    assert a.coverage_curve == b.coverage_curve
    assert a.next_sample == b.next_sample
    assert a.coverage_state.keys() == b.coverage_state.keys()
    for key in a.coverage_state:
        va, vb = a.coverage_state[key], b.coverage_state[key]
        if key == "touched":
            assert len(va) == len(vb)
            for ta, tb in zip(va, vb):
                assert np.array_equal(ta, tb)
        elif isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), key
        else:
            assert va == vb, key


def _run_pair(fuzzer, benchmark, **overrides):
    built = get_benchmark(benchmark).build(scale=0.2, seed_scale=1.0)
    serial = Campaign(_config(fuzzer, benchmark, batch=False,
                              **overrides), built=built)
    batched = Campaign(_config(fuzzer, benchmark, batch=True,
                               **overrides), built=built)
    rs = serial.run()
    rb = batched.run()
    return serial, batched, rs, rb


@pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
@pytest.mark.parametrize("bench", ["zlib", "libpng"])
class TestBatchSerialEquivalence:
    def test_results_bit_identical(self, fuzzer, bench):
        serial, batched, rs, rb = _run_pair(fuzzer, bench)
        assert rs.execs == rb.execs
        assert rs.virtual_seconds == rb.virtual_seconds
        assert rs.corpus == rb.corpus
        assert rs.coverage_curve == rb.coverage_curve
        assert rs.crash_curve == rb.crash_curve
        assert rs.op_cycles == rb.op_cycles
        assert rs.discovered_locations == rb.discovered_locations
        assert rs.used_key == rb.used_key
        assert rs.unique_crashes == rb.unique_crashes
        assert rs.afl_unique_crashes == rb.afl_unique_crashes
        assert rs.hangs == rb.hangs
        assert rs.unique_hangs == rb.unique_hangs
        assert rs.interesting_execs == rb.interesting_execs
        assert rs.stopped_by == rb.stopped_by
        assert_checkpoints_equal(serial.snapshot(), batched.snapshot())

    def test_work_was_actually_found(self, fuzzer, bench):
        """Guard against vacuous equivalence: the workload must admit
        seeds (and exercise crash handling on libpng)."""
        _, _, rs, _ = _run_pair(fuzzer, bench)
        assert len(rs.corpus) > len(
            get_benchmark(bench).build(scale=0.2,
                                       seed_scale=1.0).seeds)


class TestBatchCoversDispatchPaths:
    def test_crash_dispatch_reached_and_identical(self):
        """The pair run must exercise crash triage — otherwise the
        equivalence above never tested the replay dispatch."""
        serial, batched, rs, rb = _run_pair(
            "bigmap", "zlib", rng_seed=1, virtual_seconds=1.0,
            max_real_execs=4_000)
        assert rs.unique_crashes > 0
        assert rs.unique_crashes == rb.unique_crashes
        assert rs.crash_curve == rb.crash_curve
        assert_checkpoints_equal(serial.snapshot(), batched.snapshot())

    @pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
    def test_hang_dispatch_reached_and_identical(self, fuzzer):
        """A tight hang budget forces the timeout path: the batched
        engine must predict hangs from the cheap-path cycle totals and
        replay them, matching the serial engine's verdicts exactly."""
        serial, batched, rs, rb = _run_pair(
            fuzzer, "zlib", rng_seed=2, hang_factor=1.5)
        assert rs.hangs > 0
        assert rs.hangs == rb.hangs
        assert rs.unique_hangs == rb.unique_hangs
        assert rs.corpus == rb.corpus
        assert rs.op_cycles == rb.op_cycles
        assert_checkpoints_equal(serial.snapshot(), batched.snapshot())


class TestBatchedTelemetryIdentity:
    def test_span_profile_and_events_match_serial(self):
        """Telemetry is part of the equivalence contract: the batched
        engine deposits the same per-exec span calls (execute,
        classify_compare, cost_eval) and emits the same event stream
        the scalar pipeline records."""
        from repro.telemetry.recorder import TelemetryRecorder
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        profiles, events, results = [], [], []
        for batch in (False, True):
            recorder = TelemetryRecorder(instance=0)
            result = Campaign(_config("bigmap", "zlib", batch=batch),
                              built=built, telemetry=recorder).run()
            profiles.append(recorder.tracer.profile())
            events.append(recorder.events)
            results.append(result)
        assert results[0] == results[1]
        assert profiles[0] == profiles[1]
        assert events[0] == events[1]
        execs = results[0].execs
        for name in ("execute", "classify_compare", "cost_eval"):
            assert profiles[1][name]["calls"] == execs, name


def _draw_sweep_combos(n, seed=0xB16):
    """Seeded random draws over (fuzzer, benchmark, map_size,
    rng_seed) — a different slice of the config space than the fixed
    cases above, but reproducible run to run."""
    rng = np.random.Generator(np.random.PCG64(seed))
    fuzzers = ("afl", "bigmap")
    benchmarks = ("zlib", "libpng")
    map_sizes = (1 << 14, 1 << 16, 1 << 18)
    combos, seen = [], set()
    while len(combos) < n:
        combo = (fuzzers[rng.integers(len(fuzzers))],
                 benchmarks[rng.integers(len(benchmarks))],
                 map_sizes[rng.integers(len(map_sizes))],
                 int(rng.integers(0, 1000)))
        if combo not in seen:
            seen.add(combo)
            combos.append(combo)
    return combos


SWEEP_COMBOS = _draw_sweep_combos(6)


@pytest.mark.parametrize(
    "fuzzer,bench,map_size,rng_seed", SWEEP_COMBOS,
    ids=[f"{f}-{b}-{m >> 10}k-s{s}" for f, b, m, s in SWEEP_COMBOS])
class TestRandomizedCrossConfigSweep:
    """The equivalence contract over randomly-drawn configurations:
    the fixed cases above pin known-tricky spots, this sweep guards
    the rest of the (fuzzer, benchmark, map_size, rng_seed) space.
    Draws are seeded, so a failing combo reproduces by name."""

    def test_results_checkpoints_and_telemetry_identical(
            self, fuzzer, bench, map_size, rng_seed):
        from repro.telemetry.recorder import TelemetryRecorder
        built = get_benchmark(bench).build(scale=0.2, seed_scale=1.0)
        campaigns, results, events, profiles = [], [], [], []
        for batch in (False, True):
            recorder = TelemetryRecorder(instance=0)
            campaign = Campaign(
                _config(fuzzer, bench, batch=batch,
                        map_size=map_size, rng_seed=rng_seed),
                built=built, telemetry=recorder)
            results.append(campaign.run())
            campaigns.append(campaign)
            events.append(recorder.events)
            profiles.append(recorder.tracer.profile())
        rs, rb = results
        assert rs == rb
        assert events[0] == events[1]
        assert profiles[0] == profiles[1]
        assert_checkpoints_equal(campaigns[0].snapshot(),
                                 campaigns[1].snapshot())


class _WindowRecordingCampaign(Campaign):
    """Records how many seeds each collected window actually held."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.window_sizes = []

    def _collect_window(self):
        window = super()._collect_window()
        if window is not None:
            self.window_sizes.append(len(window[1]))
        return window


@pytest.mark.parametrize("window", [2, 5, 8])
@pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
class TestCrossSeedWindowEquivalence:
    """``batch_window`` is a semantic scheduling knob shared by both
    engines: for any window width the serial and batched engines must
    stay bit-identical (the cross-seed generalization of the
    equivalence contract)."""

    def test_results_and_checkpoints_identical(self, fuzzer, window):
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        serial = _WindowRecordingCampaign(
            _config(fuzzer, "zlib", batch=False, batch_window=window),
            built=built)
        batched = _WindowRecordingCampaign(
            _config(fuzzer, "zlib", batch=True, batch_window=window),
            built=built)
        rs, rb = serial.run(), batched.run()
        # Guard against vacuous equivalence: the campaign must really
        # have scheduled multi-seed windows, on both engines.
        assert max(serial.window_sizes) > 1
        assert serial.window_sizes == batched.window_sizes
        assert rs == rb
        assert_checkpoints_equal(serial.snapshot(), batched.snapshot())


class TestCrossSeedHangAttribution:
    """Regression: hang prediction in a cross-seed mega-batch is
    per-trace and charged to the owning seed's portion. A tight hang
    budget plus multi-seed windows exercises predicted hangs landing in
    interior portions of the batch; every hang verdict, cycle charge
    and admitted seed's parentage must match the serial engine."""

    @pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
    def test_hangs_attributed_identically_across_windows(self, fuzzer):
        serial, batched, rs, rb = _run_pair(
            fuzzer, "zlib", rng_seed=2, hang_factor=1.5,
            batch_window=5)
        assert rs.hangs > 0
        assert rs.hangs == rb.hangs
        assert rs.unique_hangs == rb.unique_hangs
        assert rs.op_cycles == rb.op_cycles
        sa, sb = serial.snapshot(), batched.snapshot()
        # The attribution fields specifically: every admitted seed's
        # cycle charge, parent and depth (checked field-by-field inside
        # the full checkpoint comparison).
        _assert_seeds_equal(sa.seeds, sb.seeds)
        assert_checkpoints_equal(sa, sb)


class TestMPBackendEquivalence:
    """The shared-memory process-pool backend is a pure execution
    strategy: results, checkpoints and telemetry must be bit-identical
    to the in-process batched engine for any worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_checkpoints_telemetry_identical(self, workers):
        from repro.fuzzer.mp import MPCampaign
        from repro.telemetry.recorder import TelemetryRecorder
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        config = _config("bigmap", "zlib", batch=True, batch_window=8)

        ref_recorder = TelemetryRecorder(instance=0)
        reference = Campaign(config, built=built,
                             telemetry=ref_recorder)
        ref_result = reference.run()

        mp_recorder = TelemetryRecorder(instance=0)
        with MPCampaign(config, built=built, telemetry=mp_recorder,
                        workers=workers) as campaign:
            mp_result = campaign.run()
            mp_snapshot = campaign.snapshot()

        assert ref_result == mp_result
        assert ref_recorder.events == mp_recorder.events
        assert ref_recorder.tracer.profile() == \
            mp_recorder.tracer.profile()
        assert_checkpoints_equal(reference.snapshot(), mp_snapshot)

    @pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
    def test_matches_the_serial_engine_too(self, fuzzer):
        """Transitivity spot-check straight against serial — the
        contract chains serial ≡ batched ≡ mp."""
        from repro.fuzzer.mp import MPCampaign
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        serial = Campaign(_config(fuzzer, "zlib", batch=False,
                                  batch_window=4), built=built)
        rs = serial.run()
        with MPCampaign(_config(fuzzer, "zlib", batch=True,
                                batch_window=4), built=built,
                        workers=2) as campaign:
            rmp = campaign.run()
            mp_snapshot = campaign.snapshot()
        assert rs == rmp
        assert_checkpoints_equal(serial.snapshot(), mp_snapshot)

    def test_rejects_serial_config(self):
        from repro.core.errors import CampaignConfigError
        from repro.fuzzer.mp import MPCampaign
        with pytest.raises(CampaignConfigError, match="batch_execution"):
            MPCampaign(_config("bigmap", "zlib", batch=False))
        with pytest.raises(CampaignConfigError, match="workers"):
            MPCampaign(_config("bigmap", "zlib", batch=True), workers=0)


class TestCheckpointResumeSweep:
    """Kill-at-every-tick: snapshot a straight-through campaign at
    several mid-campaign virtual times and resume each checkpoint —
    under the same backend and across backends — to the end. Every
    resumed final must be bit-identical to the straight run. Windows
    never outlive a ``step_until`` call, so a checkpoint taken between
    ticks only ever sees fully drained windows; this sweep is the
    regression net for resume inside a cross-seed scheduling regime."""

    TICKS = (0.1, 0.2, 0.3, 0.4)

    def _straight_run(self, campaign_factory, config):
        straight = campaign_factory(config)
        straight.start()
        checkpoints = []
        for tick in self.TICKS:
            straight.step_until(tick)
            checkpoints.append(straight.snapshot())
        straight.step_until(config.virtual_seconds)
        final = straight.finish()
        final_snapshot = straight.snapshot()
        self._close(straight)
        return checkpoints, final, final_snapshot

    @staticmethod
    def _close(campaign):
        if hasattr(campaign, "close"):
            campaign.close()

    def _resume_and_check(self, campaign_factory, config, tick_index,
                          checkpoint, final, final_snapshot):
        # A deadline stop is semantic (it discards the rest of a drawn
        # window), so the resumed campaign replays the driver's
        # remaining tick schedule, exactly as a restarted driver would.
        resumed = campaign_factory(config)
        resumed.start()
        resumed.restore(checkpoint)
        for tick in self.TICKS[tick_index + 1:]:
            resumed.step_until(tick)
        resumed.step_until(config.virtual_seconds)
        replay = resumed.finish()
        snapshot = resumed.snapshot()
        self._close(resumed)
        assert final == replay
        assert_checkpoints_equal(final_snapshot, snapshot)

    @pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
    def test_every_tick_resumes_identically_in_process(self, fuzzer):
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        config = _config(fuzzer, "zlib", batch=True, batch_window=5)
        factory = lambda cfg: Campaign(cfg, built=built)
        checkpoints, final, final_snapshot = self._straight_run(
            factory, config)
        for k, checkpoint in enumerate(checkpoints):
            self._resume_and_check(factory, config, k, checkpoint,
                                   final, final_snapshot)

    def test_every_tick_resumes_identically_across_backends(self):
        """A checkpoint is backend-agnostic: snapshots from the
        in-process engine resume under the mp backend and vice versa,
        landing on the same finals."""
        from repro.fuzzer.mp import MPCampaign
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        config = _config("bigmap", "zlib", batch=True, batch_window=5)
        inproc = lambda cfg: Campaign(cfg, built=built)
        mp = lambda cfg: MPCampaign(cfg, built=built, workers=2)

        checkpoints, final, final_snapshot = self._straight_run(
            inproc, config)
        for k, checkpoint in enumerate(checkpoints):
            self._resume_and_check(mp, config, k, checkpoint,
                                   final, final_snapshot)

        mp_checkpoints, mp_final, mp_final_snapshot = \
            self._straight_run(mp, config)
        assert final == mp_final
        for k, checkpoint in enumerate(mp_checkpoints):
            self._resume_and_check(inproc, config, k, checkpoint,
                                   mp_final, mp_final_snapshot)


class TestBatchedCheckpointResume:
    @pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
    def test_resume_replays_identically(self, fuzzer):
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        config = _config(fuzzer, "zlib", batch=True)
        straight = Campaign(config, built=built)
        straight.start()
        straight.step_until(0.25)
        mid = straight.snapshot()
        straight.step_until(config.virtual_seconds)
        final = straight.finish()

        resumed = Campaign(config, built=built)
        resumed.start()
        resumed.restore(mid)
        resumed.step_until(config.virtual_seconds)
        replay = resumed.finish()

        assert final.execs == replay.execs
        assert final.corpus == replay.corpus
        assert final.coverage_curve == replay.coverage_curve
        assert final.op_cycles == replay.op_cycles
        assert_checkpoints_equal(straight.snapshot(), resumed.snapshot())
