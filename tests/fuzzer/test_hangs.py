"""Unit tests for hang detection (AFL's timeout path)."""

import pytest

from repro.fuzzer import Campaign, CampaignConfig, run_campaign
from repro.target import get_benchmark


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.3, seed_scale=1.0)


def config(**kwargs):
    defaults = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 16, scale=0.3, seed_scale=1.0,
                    virtual_seconds=0.6, max_real_execs=2_000,
                    rng_seed=11)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestHangDetection:
    def test_disabled_by_none(self, built):
        result = run_campaign(config(hang_factor=None), built=built)
        assert result.hangs == 0

    def test_generous_factor_rarely_triggers(self, built):
        result = run_campaign(config(hang_factor=50.0), built=built)
        assert result.hangs <= result.execs * 0.01

    def test_tight_factor_flags_heavy_inputs(self, built):
        """With the budget barely above the mean, loop-heavy mutants
        must trip the timeout."""
        result = run_campaign(config(hang_factor=1.5), built=built)
        assert result.hangs > 0
        assert result.unique_hangs <= result.hangs

    def test_hangs_not_admitted_to_corpus(self, built):
        """Queue entries must all execute within the hang budget."""
        campaign = Campaign(config(hang_factor=1.5), built=built)
        result = campaign.run()
        budget = campaign._hang_budget_cycles
        for data in result.corpus:
            res = campaign.executor.execute(data)
            # Approximate re-check via the model on the final state.
            from repro.memsim import ExecShape
            cycles = campaign.model.exec_cycles(ExecShape(
                traversals=res.traversals,
                unique_locations=res.n_edges,
                used_bytes=campaign.coverage.active_bytes())).total
            assert cycles <= budget * 1.05

    def test_hang_budget_scales_with_mean(self, built):
        tight = Campaign(config(hang_factor=2.0), built=built)
        loose = Campaign(config(hang_factor=20.0), built=built)
        tight.start()
        loose.start()
        assert loose._hang_budget_cycles == pytest.approx(
            10 * tight._hang_budget_cycles, rel=0.01)
