"""Unit tests for the Seed queue-entry model."""

import numpy as np

from repro.fuzzer import Seed


def make(seed_id=0, data=b"abcd", exec_cycles=100.0, locations=(1, 2)):
    return Seed(seed_id=seed_id, data=data, exec_cycles=exec_cycles,
                coverage_hash=0,
                covered_locations=np.asarray(locations, dtype=np.int64))


class TestSeed:
    def test_n_locations(self):
        assert make(locations=(1, 2, 3)).n_locations == 3

    def test_cull_score_product(self):
        seed = make(data=b"x" * 10, exec_cycles=50.0)
        assert seed.cull_score() == 500.0

    def test_cull_score_empty_data_guard(self):
        seed = make(data=b"", exec_cycles=50.0)
        assert seed.cull_score() == 50.0

    def test_defaults(self):
        seed = make()
        assert seed.depth == 0
        assert not seed.favored
        assert not seed.fuzzed
        assert seed.parent_id is None

    def test_score_orders_preference(self):
        """Shorter-and-faster always wins the cull (paper §II-A1)."""
        good = make(data=b"ab", exec_cycles=10.0)
        bad = make(data=b"ab" * 100, exec_cycles=10.0)
        slow = make(data=b"ab", exec_cycles=1000.0)
        assert good.cull_score() < bad.cull_score()
        assert good.cull_score() < slow.cull_score()
