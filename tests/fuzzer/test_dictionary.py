"""Unit tests for dictionary extraction and dictionary-driven havoc."""

import numpy as np
import pytest

from repro.fuzzer import Mutator, extract_dictionary
from repro.fuzzer.dictionary import DictionaryMixer
from repro.target import Guard, ProgramSpec, generate_program


@pytest.fixture(scope="module")
def magic_program():
    return generate_program(ProgramSpec(
        name="dict-test", n_core_edges=200, input_len=64, seed=41,
        magic_subtree_edges=60, magic_subtree_count=4,
        magic_leaf_edges=6))


class TestExtraction:
    def test_tokens_are_the_magic_operands(self, magic_program):
        tokens = extract_dictionary(magic_program)
        assert tokens
        multi = np.flatnonzero(
            magic_program.kind == np.uint8(Guard.EQ_MULTI))
        expected = {bytes(magic_program.magic[
            e, :int(magic_program.width[e])]) for e in multi.tolist()}
        assert set(tokens) == expected

    def test_deterministic_order(self, magic_program):
        assert extract_dictionary(magic_program) == \
            extract_dictionary(magic_program)

    def test_cap_respected(self, magic_program):
        assert len(extract_dictionary(magic_program, max_tokens=3)) == 3

    def test_no_magic_no_tokens(self):
        plain = generate_program(ProgramSpec(
            name="plain", n_core_edges=50, seed=1))
        assert extract_dictionary(plain) == []


class TestMixer:
    def test_empty_dictionary_is_falsy(self):
        assert not DictionaryMixer([])
        assert DictionaryMixer([b"ab"])

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            DictionaryMixer([b"x"], use_probability=2.0)

    def test_tokens_appear_in_mutants(self, magic_program):
        tokens = extract_dictionary(magic_program)
        token = max(tokens, key=len)
        mutator = Mutator(np.random.default_rng(3),
                          dictionary=[token])
        base = bytes(64)
        hits = sum(token in mutator.havoc(base) for _ in range(300))
        assert hits > 10, "dictionary tokens should appear regularly"

    def test_never_applied_when_probability_zero(self):
        mixer = DictionaryMixer([b"\xde\xad\xbe\xef"],
                                use_probability=0.0)
        rng = np.random.default_rng(0)
        buf = np.zeros(32, dtype=np.uint8)
        out = mixer.maybe_apply(buf, rng)
        assert not np.any(out)

    def test_empty_buffer_handled(self):
        mixer = DictionaryMixer([b"\x01\x02"], use_probability=1.0)
        rng = np.random.default_rng(1)
        out = mixer.maybe_apply(np.empty(0, dtype=np.uint8), rng)
        assert out.tolist() == [1, 2]


class TestCampaignIntegration:
    def test_dictionary_opens_magic_gates(self, magic_program):
        """With the autodictionary, campaigns reach magic-gated code
        that blind mutation cannot (the laf-intel alternative)."""
        from repro.fuzzer import CampaignConfig, run_campaign
        from repro.target import BuiltBenchmark, generate_seed_corpus
        built = BuiltBenchmark(
            config=None, program=magic_program,
            seeds=generate_seed_corpus(magic_program, 5, seed=2,
                                       magic_probability=0.0),
            scale=1.0)
        base = dict(benchmark="zlib", fuzzer="bigmap",
                    map_size=1 << 16, virtual_seconds=2.0,
                    max_real_execs=4_000, rng_seed=5,
                    compute_true_coverage=True)
        without = run_campaign(CampaignConfig(**base), built=built)
        with_dict = run_campaign(
            CampaignConfig(use_dictionary=True, **base), built=built)
        # Magic region is sizable (60+ edges); the dictionary must
        # unlock coverage blind mutation does not reach.
        assert with_dict.true_edge_coverage > without.true_edge_coverage
