"""Unit tests for the seed pool, favored culling, and scheduler."""

import numpy as np
import pytest

from repro.fuzzer import EnergyPolicy, Scheduler, Seed, SeedPool


def make_seed(seed_id, locations, exec_cycles=1000.0, data=b"xxxx",
              **kwargs):
    return Seed(seed_id=seed_id, data=data, exec_cycles=exec_cycles,
                coverage_hash=seed_id,
                covered_locations=np.asarray(locations, dtype=np.int64),
                **kwargs)


class TestSeedPool:
    def test_cull_favors_minimal_cover(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1, 2, 3], exec_cycles=100))
        pool.add(make_seed(1, [3], exec_cycles=50))
        pool.add(make_seed(2, [4], exec_cycles=100))
        pool.cull()
        favored = {s.seed_id for s in pool if s.favored}
        # Seed 0 covers 1,2; seed 1 is the cheaper cover for 3; seed 2
        # uniquely covers 4.
        assert 0 in favored and 2 in favored

    def test_cheaper_seed_takes_over_location(self):
        pool = SeedPool()
        pool.add(make_seed(0, [7], exec_cycles=1000, data=b"A" * 64))
        pool.add(make_seed(1, [7], exec_cycles=10, data=b"B"))
        pool.cull()
        favored = {s.seed_id for s in pool if s.favored}
        assert favored == {1}

    def test_pending_favored_counts_unfuzzed(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1]))
        assert pool.pending_favored() == 1
        pool.seeds[0].fuzzed = True
        pool._cull_pending = True
        assert pool.pending_favored() == 0

    def test_splice_partner_excludes_self(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1]))
        rng = np.random.default_rng(0)
        assert pool.pick_splice_partner(rng, 0) is None
        pool.add(make_seed(1, [2]))
        partner = pool.pick_splice_partner(rng, 0)
        assert partner.seed_id == 1

    def test_cull_score_prefers_short_fast(self):
        fast_short = make_seed(0, [1], exec_cycles=10, data=b"ab")
        slow_long = make_seed(1, [1], exec_cycles=100, data=b"ab" * 50)
        assert fast_short.cull_score() < slow_long.cull_score()


class TestScheduler:
    def _pool(self, n_favored=1, n_plain=5):
        pool = SeedPool()
        for i in range(n_favored):
            pool.add(make_seed(i, [i]))
        for i in range(n_plain):
            # Same location: only the first (cheaper) stays favored.
            pool.add(make_seed(100 + i, [0], exec_cycles=10_000.0,
                               data=b"y" * 200))
        pool.cull()
        return pool

    def test_empty_pool_rejected(self):
        scheduler = Scheduler(SeedPool(), np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            scheduler.next_seed()

    def test_favored_strongly_preferred(self):
        pool = self._pool(n_favored=1, n_plain=8)
        scheduler = Scheduler(pool, np.random.default_rng(1))
        picks = [scheduler.next_seed().favored for _ in range(50)]
        assert sum(picks) > 40

    def test_always_terminates(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1]))
        pool.seeds[0].favored = False
        pool._cull_pending = False
        scheduler = Scheduler(pool, np.random.default_rng(2))
        # A single non-favored seed must still be schedulable.
        assert scheduler.next_seed() is pool.seeds[0]

    def test_energy_bounds(self):
        policy = EnergyPolicy()
        pool = self._pool()
        scheduler = Scheduler(pool, np.random.default_rng(3),
                              policy=policy)
        for seed in pool:
            energy = scheduler.energy_for(seed)
            assert policy.min_energy <= energy <= policy.max_energy

    def test_fast_seed_gets_more_energy(self):
        policy = EnergyPolicy()
        fast = make_seed(0, [1, 2, 3], exec_cycles=100)
        slow = make_seed(1, [1, 2, 3], exec_cycles=10_000)
        e_fast = policy.energy_for(fast, pool_mean_cycles=1_000,
                                   max_locations=3)
        e_slow = policy.energy_for(slow, pool_mean_cycles=1_000,
                                   max_locations=3)
        assert e_fast > e_slow

    def test_broad_coverage_gets_more_energy(self):
        policy = EnergyPolicy()
        broad = make_seed(0, list(range(100)))
        narrow = make_seed(1, [1])
        e_broad = policy.energy_for(broad, 1_000, 100)
        e_narrow = policy.energy_for(narrow, 1_000, 100)
        assert e_broad > e_narrow

    def test_iterate_yields_pairs(self):
        pool = self._pool()
        scheduler = Scheduler(pool, np.random.default_rng(4))
        stream = scheduler.iterate()
        seed, energy = next(stream)
        assert isinstance(energy, int)
        assert seed in pool.seeds
