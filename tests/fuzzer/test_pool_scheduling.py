"""Unit tests for the seed pool, favored culling, and scheduler."""

import numpy as np
import pytest

from repro.fuzzer import EnergyPolicy, Scheduler, Seed, SeedPool


def make_seed(seed_id, locations, exec_cycles=1000.0, data=b"xxxx",
              **kwargs):
    return Seed(seed_id=seed_id, data=data, exec_cycles=exec_cycles,
                coverage_hash=seed_id,
                covered_locations=np.asarray(locations, dtype=np.int64),
                **kwargs)


class TestSeedPool:
    def test_cull_favors_minimal_cover(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1, 2, 3], exec_cycles=100))
        pool.add(make_seed(1, [3], exec_cycles=50))
        pool.add(make_seed(2, [4], exec_cycles=100))
        pool.cull()
        favored = {s.seed_id for s in pool if s.favored}
        # Seed 0 covers 1,2; seed 1 is the cheaper cover for 3; seed 2
        # uniquely covers 4.
        assert 0 in favored and 2 in favored

    def test_cheaper_seed_takes_over_location(self):
        pool = SeedPool()
        pool.add(make_seed(0, [7], exec_cycles=1000, data=b"A" * 64))
        pool.add(make_seed(1, [7], exec_cycles=10, data=b"B"))
        pool.cull()
        favored = {s.seed_id for s in pool if s.favored}
        assert favored == {1}

    def test_pending_favored_counts_unfuzzed(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1]))
        assert pool.pending_favored() == 1
        pool.seeds[0].fuzzed = True
        pool._cull_pending = True
        assert pool.pending_favored() == 0

    def test_splice_partner_excludes_self(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1]))
        rng = np.random.default_rng(0)
        assert pool.pick_splice_partner(rng, 0) is None
        pool.add(make_seed(1, [2]))
        partner = pool.pick_splice_partner(rng, 0)
        assert partner.seed_id == 1

    def test_cull_score_prefers_short_fast(self):
        fast_short = make_seed(0, [1], exec_cycles=10, data=b"ab")
        slow_long = make_seed(1, [1], exec_cycles=100, data=b"ab" * 50)
        assert fast_short.cull_score() < slow_long.cull_score()


class TestScheduler:
    def _pool(self, n_favored=1, n_plain=5):
        pool = SeedPool()
        for i in range(n_favored):
            pool.add(make_seed(i, [i]))
        for i in range(n_plain):
            # Same location: only the first (cheaper) stays favored.
            pool.add(make_seed(100 + i, [0], exec_cycles=10_000.0,
                               data=b"y" * 200))
        pool.cull()
        return pool

    def test_empty_pool_rejected(self):
        scheduler = Scheduler(SeedPool(), np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            scheduler.next_seed()

    def test_favored_strongly_preferred(self):
        pool = self._pool(n_favored=1, n_plain=8)
        scheduler = Scheduler(pool, np.random.default_rng(1))
        picks = [scheduler.next_seed().favored for _ in range(50)]
        assert sum(picks) > 40

    def test_always_terminates(self):
        pool = SeedPool()
        pool.add(make_seed(0, [1]))
        pool.seeds[0].favored = False
        pool._cull_pending = False
        scheduler = Scheduler(pool, np.random.default_rng(2))
        # A single non-favored seed must still be schedulable.
        assert scheduler.next_seed() is pool.seeds[0]

    def test_energy_bounds(self):
        policy = EnergyPolicy()
        pool = self._pool()
        scheduler = Scheduler(pool, np.random.default_rng(3),
                              policy=policy)
        for seed in pool:
            energy = scheduler.energy_for(seed)
            assert policy.min_energy <= energy <= policy.max_energy

    def test_fast_seed_gets_more_energy(self):
        policy = EnergyPolicy()
        fast = make_seed(0, [1, 2, 3], exec_cycles=100)
        slow = make_seed(1, [1, 2, 3], exec_cycles=10_000)
        e_fast = policy.energy_for(fast, pool_mean_cycles=1_000,
                                   max_locations=3)
        e_slow = policy.energy_for(slow, pool_mean_cycles=1_000,
                                   max_locations=3)
        assert e_fast > e_slow

    def test_broad_coverage_gets_more_energy(self):
        policy = EnergyPolicy()
        broad = make_seed(0, list(range(100)))
        narrow = make_seed(1, [1])
        e_broad = policy.energy_for(broad, 1_000, 100)
        e_narrow = policy.energy_for(narrow, 1_000, 100)
        assert e_broad > e_narrow

    def test_iterate_yields_pairs(self):
        pool = self._pool()
        scheduler = Scheduler(pool, np.random.default_rng(4))
        stream = scheduler.iterate()
        seed, energy = next(stream)
        assert isinstance(energy, int)
        assert seed in pool.seeds


class _AlwaysSkipRNG:
    """Stub generator whose skip rolls always land below the threshold."""

    def random(self):
        return 0.0


class TestFullSkipFallback:
    def _pool_of_unfavorables(self, n=3):
        pool = SeedPool()
        for i in range(n):
            pool.add(make_seed(i, []))  # no coverage → never favored
        pool.cull()
        assert not any(s.favored for s in pool)
        return pool

    def test_fallback_walks_the_queue(self):
        """When every seed is skipped, successive calls must still walk
        the queue instead of pinning the same entry forever."""
        pool = self._pool_of_unfavorables()
        scheduler = Scheduler(pool, _AlwaysSkipRNG())
        ids = [scheduler.next_seed().seed_id for _ in range(6)]
        assert ids == [0, 1, 2, 0, 1, 2]

    def test_fallback_counts_queue_cycles(self):
        pool = self._pool_of_unfavorables()
        scheduler = Scheduler(pool, _AlwaysSkipRNG())
        for _ in range(6):
            scheduler.next_seed()
        # Six full-skip selections walk the queue at least six times.
        assert scheduler.queue_cycles >= 6

    def test_fallback_distributes_energy_evenly(self):
        pool = self._pool_of_unfavorables(4)
        scheduler = Scheduler(pool, _AlwaysSkipRNG())
        counts = {i: 0 for i in range(4)}
        for _ in range(40):
            counts[scheduler.next_seed().seed_id] += 1
        assert all(c == 10 for c in counts.values())


class TestCullInvariants:
    """Invariants the favored cull must hold for any pool.

    The scheduler starves non-favored seeds, so a cull that drops a
    location (or flaps between equally-good covers) silently loses
    coverage from the fuzzing rotation.
    """

    def _random_pool(self, rng, n_seeds=40, n_locations=64):
        pool = SeedPool()
        for i in range(n_seeds):
            n_loc = int(rng.integers(1, 9))
            locations = rng.choice(n_locations, size=n_loc,
                                   replace=False)
            pool.add(make_seed(
                i, sorted(int(x) for x in locations),
                exec_cycles=float(rng.integers(10, 10_000)),
                data=b"x" * int(rng.integers(1, 200))))
        return pool

    def test_every_discovered_location_has_a_favored_cover(self):
        for trial in range(20):
            rng = np.random.default_rng(trial)
            pool = self._random_pool(rng)
            pool.cull()
            all_locations = set()
            favored_locations = set()
            for seed in pool:
                all_locations.update(seed.covered_locations.tolist())
                if seed.favored:
                    favored_locations.update(
                        seed.covered_locations.tolist())
            assert favored_locations == all_locations

    def test_repeated_cull_is_stable(self):
        rng = np.random.default_rng(7)
        pool = self._random_pool(rng)
        first = pool.cull()
        baseline = [s.favored for s in pool]
        for _ in range(3):
            # Force a full recompute: the favored set must not flap.
            pool._cull_pending = True
            assert pool.cull() == first
            assert [s.favored for s in pool] == baseline

    def test_cull_count_matches_flags(self):
        rng = np.random.default_rng(11)
        pool = self._random_pool(rng)
        count = pool.cull()
        assert count == sum(1 for s in pool if s.favored)

    def test_favored_survive_checkpoint_restore(self):
        """Restoring a campaign checkpoint must reproduce the favored
        set exactly — the scheduler's rotation depends on it."""
        from repro.fuzzer import Campaign, CampaignConfig
        from repro.target import get_benchmark
        built = get_benchmark("zlib").build(scale=0.2, seed_scale=1.0)
        config = CampaignConfig(
            benchmark="zlib", fuzzer="bigmap", map_size=1 << 16,
            scale=0.2, seed_scale=1.0, virtual_seconds=0.4,
            max_real_execs=2_000, rng_seed=5)
        campaign = Campaign(config, built=built)
        campaign.run()
        campaign.pool.cull()
        snap = campaign.snapshot()

        resumed = Campaign(config, built=built)
        resumed.start()
        resumed.restore(snap)
        resumed.pool.cull()
        assert [s.seed_id for s in resumed.pool] == \
            [s.seed_id for s in campaign.pool]
        assert [s.favored for s in resumed.pool] == \
            [s.favored for s in campaign.pool]
        assert resumed.pool._top_rated == campaign.pool._top_rated
