"""Integration tests: end-to-end fuzzing campaigns."""

import numpy as np
import pytest

from repro.core.errors import CampaignConfigError
from repro.fuzzer import Campaign, CampaignConfig, run_campaign
from repro.target import get_benchmark


@pytest.fixture(scope="module")
def built_small():
    return get_benchmark("libpng").build(scale=0.3, seed_scale=1.0)


def config(fuzzer="bigmap", **kwargs):
    defaults = dict(benchmark="libpng", fuzzer=fuzzer, map_size=1 << 16,
                    scale=0.3, seed_scale=1.0, virtual_seconds=0.5,
                    max_real_execs=1_500, rng_seed=5)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestConfigValidation:
    def test_unknown_fuzzer(self):
        with pytest.raises(CampaignConfigError):
            config(fuzzer="libfuzzer")

    def test_nonpositive_budget(self):
        with pytest.raises(CampaignConfigError):
            config(virtual_seconds=0)

    def test_nonpositive_exec_cap(self):
        with pytest.raises(CampaignConfigError):
            config(max_real_execs=0)


class TestCampaignRuns:
    @pytest.mark.parametrize("fuzzer", ["afl", "bigmap"])
    def test_basic_campaign(self, built_small, fuzzer):
        result = run_campaign(config(fuzzer=fuzzer), built=built_small)
        assert result.execs > len(built_small.seeds)
        assert result.throughput > 0
        assert result.discovered_locations > 0
        assert result.corpus_size >= len(built_small.seeds)
        assert result.stopped_by in ("budget", "execs")
        assert result.virtual_seconds <= 0.6 or \
            result.stopped_by == "execs"

    def test_coverage_grows_over_campaign(self, built_small):
        result = run_campaign(config(), built=built_small)
        values = [v for _, v in result.coverage_curve]
        assert values, "curve must have samples"
        assert values[-1] >= values[0]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_deterministic_given_seed(self, built_small):
        a = run_campaign(config(rng_seed=9), built=built_small)
        b = run_campaign(config(rng_seed=9), built=built_small)
        assert a.execs == b.execs
        assert a.discovered_locations == b.discovered_locations
        assert a.unique_crashes == b.unique_crashes

    def test_different_replicas_differ(self, built_small):
        a = run_campaign(config(rng_seed=1), built=built_small)
        b = run_campaign(config(rng_seed=2), built=built_small)
        assert a.discovered_locations != b.discovered_locations or \
            a.execs != b.execs

    def test_used_key_only_for_bigmap(self, built_small):
        big = run_campaign(config(fuzzer="bigmap"), built=built_small)
        afl = run_campaign(config(fuzzer="afl"), built=built_small)
        assert big.used_key is not None and big.used_key > 0
        assert afl.used_key is None

    def test_bigmap_used_bounded_by_discoveries(self, built_small):
        result = run_campaign(config(fuzzer="bigmap"),
                              built=built_small)
        assert result.used_key >= result.discovered_locations * 0.5

    def test_op_cycles_accumulated(self, built_small):
        result = run_campaign(config(), built=built_small)
        assert set(result.op_cycles) == {"execution", "reset",
                                         "classify", "compare", "hash",
                                         "others"}
        assert result.op_cycles["execution"] > 0
        shares = result.op_time_share()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_exec_cap_stops_campaign(self, built_small):
        result = run_campaign(
            config(max_real_execs=len(built_small.seeds) + 50,
                   virtual_seconds=1e9),
            built=built_small)
        assert result.stopped_by == "execs"
        assert result.execs == len(built_small.seeds) + 50

    def test_true_coverage_computed_on_request(self, built_small):
        result = run_campaign(config(compute_true_coverage=True),
                              built=built_small)
        assert result.true_edge_coverage is not None
        assert 0 < result.true_edge_coverage <= \
            built_small.program.n_edges

    def test_throughput_drops_with_map_size_for_afl(self, built_small):
        small = run_campaign(config(fuzzer="afl", map_size=1 << 16),
                             built=built_small)
        large = run_campaign(config(fuzzer="afl", map_size=1 << 23),
                             built=built_small)
        assert large.throughput < small.throughput / 5

    def test_bigmap_throughput_stable_across_map_sizes(self,
                                                       built_small):
        small = run_campaign(config(map_size=1 << 16), built=built_small)
        large = run_campaign(config(map_size=1 << 23), built=built_small)
        assert large.throughput > small.throughput * 0.8


class TestCrashFinding:
    @pytest.fixture(scope="class")
    def crashy(self):
        # bloaty has planted crash sites.
        return get_benchmark("bloaty").build(scale=0.3, seed_scale=0.5)

    def test_crashes_found_and_deduplicated(self, crashy):
        result = run_campaign(CampaignConfig(
            benchmark="bloaty", fuzzer="bigmap", map_size=1 << 18,
            scale=0.3, seed_scale=0.5, virtual_seconds=3.0,
            max_real_execs=6_000, rng_seed=1), built=crashy)
        # Crash sites exist; the campaign may or may not trigger them,
        # but the counters must be consistent either way.
        assert result.unique_crashes >= 0
        assert result.unique_crashes <= crashy.program.n_crash_sites
        assert len(result.crash_curve) == result.unique_crashes

    def test_crashing_inputs_not_added_to_corpus(self, crashy):
        campaign = Campaign(CampaignConfig(
            benchmark="bloaty", fuzzer="bigmap", map_size=1 << 18,
            scale=0.3, seed_scale=0.5, virtual_seconds=2.0,
            max_real_execs=4_000, rng_seed=2), built=crashy)
        result = campaign.run()
        executor = campaign.executor
        for data in result.corpus:
            assert executor.execute(data).crash is None
