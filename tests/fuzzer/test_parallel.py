"""Integration tests for parallel fuzzing sessions."""

import pytest

from repro.core.errors import CampaignConfigError
from repro.fuzzer import CampaignConfig, ParallelSession, run_parallel
from repro.target import get_benchmark


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def config(**kwargs):
    defaults = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 18, scale=0.25, seed_scale=1.0,
                    virtual_seconds=0.4, max_real_execs=800, rng_seed=3)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestSessionValidation:
    def test_needs_instances(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession(config(), 0, built=built)

    def test_core_limit(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession(config(), 13, built=built)


class TestSessionRuns:
    def test_single_instance_equals_campaign_shape(self, built):
        summary = run_parallel(config(), 1, built=built)
        assert summary.n_instances == 1
        assert summary.total_execs > 0
        assert summary.mean_slowdown == pytest.approx(1.0, abs=0.1)

    def test_two_instances_do_more_total_work(self, built):
        one = run_parallel(config(), 1, built=built)
        two = run_parallel(config(), 2, built=built)
        assert two.total_execs > one.total_execs * 1.4

    def test_instances_have_distinct_random_streams(self, built):
        summary = run_parallel(config(), 2, built=built)
        a, b = summary.per_instance
        assert a.execs != b.execs or \
            a.discovered_locations != b.discovered_locations

    def test_corpus_sync_spreads_discoveries(self, built):
        """After syncs, instances' global coverage converges: each
        instance knows at least as much as it could alone."""
        session = ParallelSession(config(virtual_seconds=0.6), 2,
                                  built=built)
        summary = session.run()
        discovered = [r.discovered_locations for r in
                      summary.per_instance]
        # Synced instances should be within a few percent of each other.
        assert min(discovered) > 0.7 * max(discovered)

    def test_crash_union(self, built):
        crashy = get_benchmark("bloaty").build(scale=0.25,
                                               seed_scale=0.5)
        summary = run_parallel(
            config(benchmark="bloaty", scale=0.25, seed_scale=0.5,
                   virtual_seconds=1.0, max_real_execs=1_500),
            2, built=crashy)
        per_instance_max = max(r.unique_crashes
                               for r in summary.per_instance)
        assert summary.unique_crashes >= per_instance_max

    def test_afl_slows_more_than_bigmap_under_contention(self, built):
        afl = run_parallel(config(fuzzer="afl", map_size=1 << 21), 4,
                           built=built)
        big = run_parallel(config(fuzzer="bigmap", map_size=1 << 21), 4,
                           built=built)
        assert afl.mean_slowdown >= big.mean_slowdown


class TestEnsembleValidation:
    def test_empty_config_list_rejected(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession([], built=built)

    def test_n_instances_config_list_mismatch_rejected(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession([config(), config()], 3, built=built)

    def test_mixed_benchmark_ensemble_rejected(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession([config(),
                             config(benchmark="bloaty", seed_scale=0.5)],
                            built=built)

    def test_mixed_scale_ensemble_rejected(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession([config(), config(scale=0.5)], built=built)

    def test_ensemble_larger_than_machine_rejected(self, built):
        with pytest.raises(CampaignConfigError):
            ParallelSession([config(rng_seed=i) for i in range(13)],
                            built=built)


class TestSessionEdgeCases:
    def test_single_instance_never_syncs(self, built):
        session = ParallelSession(config(), 1, built=built,
                                  sync_interval=0.05)
        summary = session.run()
        assert session._import_cursors == {}
        assert summary.quarantined_imports == 0
        assert summary.total_execs == summary.per_instance[0].execs

    def test_contention_multiplier_floors_at_one(self, built):
        """The contention model may predict a *faster* shared rate at
        low load; sessions must never credit instances with a
        below-solo cost."""
        session = ParallelSession(config(), 2, built=built,
                                  sync_interval=0.1)
        summary = session.run()
        assert all(s >= 1.0 for s in session._slowdown_samples)
        assert summary.mean_slowdown >= 1.0
        for inst in session.instances:
            assert inst.cycle_multiplier >= 1.0


class TestSyncDedup:
    def test_sync_never_reimports_known_payloads(self, built):
        """Regression for the sync echo bug: instance i's exports came
        back from every peer on the next sync and were re-executed,
        O(k^2) duplicate work. Every import must be a payload the
        destination has never held."""
        session = ParallelSession(config(virtual_seconds=0.8,
                                         max_real_execs=2_000), 3,
                                  built=built, sync_interval=0.1)
        imports = {i: [] for i in range(3)}
        for i, inst in enumerate(session.instances):
            original = inst.import_input

            def wrapped(data, _original=original, _inst=inst, _i=i):
                held = {s.data for s in _inst.pool.seeds}
                assert data not in held, "echoed payload re-imported"
                imports[_i].append(data)
                return _original(data)

            inst.import_input = wrapped
        session.run()
        for payloads in imports.values():
            # ... and never imports the same payload twice, even when
            # two peers both offer it.
            assert len(payloads) == len(set(payloads))
