"""Checkpoint/resume fidelity: snapshot → continue vs restore → continue.

The supervisor's restart correctness rests on one property: restoring a
checkpoint and re-running a window reproduces the original run
bit-identically (same RNG stream position, same queue, same virgin
maps, same clock). These tests pin that property for both coverage
structures.
"""

import pytest

from repro.core.errors import CheckpointError
from repro.fuzzer import Campaign, CampaignConfig
from repro.target import get_benchmark


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


@pytest.fixture(scope="module")
def crashy():
    return get_benchmark("bloaty").build(scale=0.25, seed_scale=0.5)


def config(**kwargs):
    defaults = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 18, scale=0.25, seed_scale=1.0,
                    virtual_seconds=0.6, max_real_execs=4_000,
                    rng_seed=11)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


def fingerprint(campaign):
    """Everything observable about a campaign's fuzzing state."""
    return {
        "execs": campaign.execs,
        "cycles": campaign.clock.cycles,
        "discovered": campaign.virgin.count_discovered(),
        "corpus": [s.data for s in campaign.pool.seeds],
        "seed_flags": [(s.favored, s.fuzzed) for s in campaign.pool.seeds],
        "crashes": sorted(campaign.crashwalk.records.keys()),
        "afl_crashes": campaign.afl_triage.unique_crashes,
        "hangs": campaign.hangs,
        "op_cycles": dict(campaign.op_cycles),
        "rng": campaign.rng.bit_generator.state["state"],
        "curve": list(campaign.coverage_curve),
    }


@pytest.mark.parametrize("fuzzer", ["bigmap", "afl"])
def test_restore_then_rerun_is_bit_identical(built, fuzzer):
    campaign = Campaign(config(fuzzer=fuzzer), built=built)
    campaign.start()
    campaign.step_until(0.2)
    checkpoint = campaign.snapshot()
    mid = fingerprint(campaign)

    campaign.step_until(0.4)
    first = fingerprint(campaign)
    assert first != mid   # the second window did something

    campaign.restore(checkpoint)
    assert fingerprint(campaign) == mid
    campaign.step_until(0.4)
    assert fingerprint(campaign) == first


def test_restore_is_repeatable(built):
    """A checkpoint can be restored any number of times."""
    campaign = Campaign(config(), built=built)
    campaign.start()
    campaign.step_until(0.15)
    checkpoint = campaign.snapshot()
    runs = []
    for _ in range(3):
        campaign.restore(checkpoint)
        campaign.step_until(0.3)
        runs.append(fingerprint(campaign))
    assert runs[0] == runs[1] == runs[2]


def test_checkpoint_isolated_from_later_mutation(built):
    """Snapshots are value copies: continuing the campaign must not
    mutate a checkpoint taken earlier."""
    campaign = Campaign(config(), built=built)
    campaign.start()
    checkpoint = campaign.snapshot()
    n_seeds = len(checkpoint.seeds)
    discovered = int((checkpoint.virgin != 0xFF).sum())
    campaign.step_until(0.3)
    assert len(checkpoint.seeds) == n_seeds
    assert int((checkpoint.virgin != 0xFF).sum()) == discovered


def test_crash_records_survive_roundtrip(crashy):
    campaign = Campaign(config(benchmark="bloaty", seed_scale=0.5,
                               virtual_seconds=1.0), built=crashy)
    campaign.start()
    campaign.step_until(0.5)
    checkpoint = campaign.snapshot()
    before = dict(campaign.crashwalk.records)
    campaign.step_until(1.0)
    campaign.restore(checkpoint)
    assert set(campaign.crashwalk.records) == set(before)
    assert campaign.crashwalk.unique_crashes == len(before)


def test_snapshot_requires_start(built):
    campaign = Campaign(config(), built=built)
    with pytest.raises(CheckpointError):
        campaign.snapshot()


def test_restore_rejects_cross_structure_checkpoint(built):
    big = Campaign(config(fuzzer="bigmap"), built=built)
    big.start()
    afl = Campaign(config(fuzzer="afl"), built=built)
    afl.start()
    with pytest.raises(CheckpointError):
        afl.restore(big.snapshot())
    with pytest.raises(CheckpointError):
        big.restore(afl.snapshot())


def test_supervision_counters_survive_restore(built):
    """restarts/faults_injected count lifetime events, not state since
    the checkpoint — restore must leave them alone."""
    campaign = Campaign(config(), built=built)
    campaign.start()
    checkpoint = campaign.snapshot()
    campaign.restarts = 2
    campaign.faults_injected = 3
    campaign.restore(checkpoint)
    assert campaign.restarts == 2
    assert campaign.faults_injected == 3
