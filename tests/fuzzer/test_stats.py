"""Unit tests for campaign statistics records."""

import pytest

from repro.fuzzer import RunningShape
from repro.memsim import ExecShape


class TestRunningShape:
    def test_absorbs_and_averages(self):
        stats = RunningShape()
        stats.absorb(ExecShape(traversals=100, unique_locations=10,
                               used_bytes=50))
        stats.absorb(ExecShape(traversals=300, unique_locations=30,
                               used_bytes=80, interesting=True))
        mean = stats.mean_shape()
        assert mean.traversals == 200
        assert mean.unique_locations == 20
        assert mean.used_bytes == 80, "used is a high-water mark"
        assert stats.interesting == 1
        assert stats.execs == 2

    def test_empty_mean(self):
        mean = RunningShape().mean_shape()
        assert mean.traversals == 0
        assert mean.unique_locations == 0
