"""Unit tests for the virtual clock."""

import pytest

from repro.core.errors import CampaignConfigError
from repro.fuzzer import VirtualClock


class TestVirtualClock:
    def test_accumulates(self):
        clock = VirtualClock(2.4e9)
        clock.charge(2.4e9)
        clock.charge(1.2e9)
        assert clock.seconds == pytest.approx(1.5)

    def test_before_deadline(self):
        clock = VirtualClock(1e9)
        assert clock.before(1.0)
        clock.charge(1e9)
        assert not clock.before(1.0)

    def test_rejects_negative_charge(self):
        with pytest.raises(CampaignConfigError):
            VirtualClock(1e9).charge(-1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(CampaignConfigError):
            VirtualClock(0)
