"""Unit tests for crash triage: Crashwalk dedup and AFL's map bias."""

import numpy as np

from repro.fuzzer import AflCrashTriager, CrashwalkTriager
from repro.target.crashes import CrashInfo


def crash(site_id, stack=(1, 2, 3), address=None):
    return CrashInfo(site_id=site_id, edge_index=site_id, stack=stack,
                     fault_address=address if address is not None
                     else 0x400000 + site_id * 0x40)


class TestCrashwalk:
    def test_first_sighting_is_new(self):
        triager = CrashwalkTriager()
        assert triager.observe(crash(1), 10.0)
        assert triager.unique_crashes == 1

    def test_duplicates_counted_not_added(self):
        triager = CrashwalkTriager()
        triager.observe(crash(1), 10.0)
        assert not triager.observe(crash(1), 20.0)
        assert triager.unique_crashes == 1
        record = next(iter(triager.records.values()))
        assert record.n_seen == 2

    def test_distinct_stacks_are_distinct_crashes(self):
        triager = CrashwalkTriager()
        triager.observe(crash(1, stack=(1, 2)), 0.0)
        triager.observe(crash(1, stack=(9, 2)), 0.0)
        assert triager.unique_crashes == 2

    def test_dedup_is_map_size_independent(self):
        """The reason the paper uses Crashwalk: identical crashes dedup
        identically regardless of any map configuration."""
        a, b = CrashwalkTriager(), CrashwalkTriager()
        for c in (crash(1), crash(2), crash(1)):
            a.observe(c, 0.0)
            b.observe(c, 0.0)
        assert a.unique_crashes == b.unique_crashes == 2

    def test_merge_from_unions(self):
        a, b = CrashwalkTriager(), CrashwalkTriager()
        a.observe(crash(1), 5.0)
        b.observe(crash(1), 2.0)
        b.observe(crash(2), 3.0)
        new = a.merge_from(b)
        assert new == 1
        assert a.unique_crashes == 2
        # Earliest sighting wins.
        key = crash(1).crashwalk_key()
        assert a.records[key].found_at == 2.0

    def test_curve_is_cumulative(self):
        triager = CrashwalkTriager()
        triager.observe(crash(1), 5.0)
        triager.observe(crash(2), 2.0)
        assert triager.curve() == [(2.0, 1), (5.0, 2)]


class TestAflTriage:
    def _trace(self, size, locations):
        trace = np.zeros(size, dtype=np.uint8)
        trace[list(locations)] = 1
        return trace

    def test_new_edge_crash_is_unique(self):
        triager = AflCrashTriager(256)
        assert triager.observe(self._trace(256, [5]))
        assert not triager.observe(self._trace(256, [5]))
        assert triager.observe(self._trace(256, [9]))
        assert triager.unique_crashes == 2

    def test_sparse_observe_equivalent(self):
        dense = AflCrashTriager(256)
        sparse = AflCrashTriager(256)
        for locs in ([5], [5], [9], [5, 9], [11]):
            trace = self._trace(256, locs)
            idx = np.flatnonzero(trace)
            assert dense.observe(trace) == \
                sparse.observe_sparse(idx, trace[idx])
        assert dense.unique_crashes == sparse.unique_crashes

    def test_map_size_bias(self):
        """The bias the paper avoids: with a tiny map, distinct crash
        sites collide and are undercounted; a big map counts more."""
        tiny, big = AflCrashTriager(4), AflCrashTriager(1 << 12)
        rng = np.random.default_rng(0)
        sites = rng.integers(0, 1 << 12, size=40)
        for site in sites:
            tiny.observe(self._trace(4, [int(site) % 4]))
            big.observe(self._trace(1 << 12, [int(site)]))
        assert tiny.unique_crashes < big.unique_crashes
