"""Unit tests for seed trimming, persistent/fork modes, and ensembles."""

import numpy as np
import pytest

from repro.fuzzer import CampaignConfig, run_campaign, run_ensemble
from repro.fuzzer.trim import TRIM_MIN_BYTES, trim_input
from repro.target import get_benchmark


class TestTrimInput:
    def test_redundant_tail_removed(self):
        """A hash that only looks at the first 8 bytes: everything
        after must be trimmed away."""
        def oracle(data):
            return hash(data[:8])

        data = bytes(range(8)) + bytes(100)
        result = trim_input(data, oracle, max_executions=4_000)
        assert result.data[:8] == data[:8]
        assert len(result.data) < len(data)
        assert result.removed_bytes == len(data) - len(result.data)

    def test_essential_input_untouched(self):
        """A hash over the whole input: nothing can be removed."""
        result = trim_input(bytes(range(64)), hash)
        assert result.data == bytes(range(64))
        assert result.removed_bytes == 0

    def test_tiny_input_skipped(self):
        result = trim_input(b"ab", hash)
        assert result.executions == 0
        assert result.data == b"ab"

    def test_never_below_minimum(self):
        result = trim_input(bytes(64), lambda d: 0)  # everything equal
        assert len(result.data) >= TRIM_MIN_BYTES

    def test_execution_budget_respected(self):
        calls = []

        def oracle(data):
            calls.append(1)
            return hash(data)

        trim_input(bytes(512), oracle, max_executions=50)
        assert len(calls) <= 50

    def test_preserves_oracle_value(self):
        def oracle(data):
            return hash(bytes(b for b in data if b))

        data = bytes([1, 0, 0, 2, 0, 3] * 10)
        result = trim_input(data, oracle, max_executions=2_000)
        assert oracle(result.data) == oracle(data)


class TestCampaignTrim:
    def test_trimmed_corpus_is_shorter(self, monkeypatch):
        """Paired check: every admitted entry passes through trim, trim
        never grows an input, and it removes bytes somewhere. (Comparing
        mean corpus length across two *different* campaigns is noise:
        trim charges executions, so the fuzzing streams diverge.)"""
        from repro.fuzzer import trim as trim_mod
        recorded = []
        real = trim_mod.trim_input

        def spy(data, oracle, **kwargs):
            result = real(data, oracle, **kwargs)
            recorded.append((len(data), len(result.data)))
            return result

        monkeypatch.setattr(trim_mod, "trim_input", spy)
        built = get_benchmark("libpng").build(scale=0.2, seed_scale=1.0)
        trimmed = run_campaign(CampaignConfig(
            benchmark="libpng", fuzzer="bigmap", map_size=1 << 16,
            scale=0.2, seed_scale=1.0, virtual_seconds=0.3,
            max_real_execs=1_000, rng_seed=4, trim_seeds=True),
            built=built)
        assert len(recorded) == len(trimmed.corpus)
        assert all(after <= before for before, after in recorded)
        assert sum(before - after for before, after in recorded) > 0

    def test_trimmed_corpus_preserves_coverage(self):
        """Trimming must not lose the coverage the corpus encodes."""
        from repro.analysis import evaluate_corpus
        built = get_benchmark("libpng").build(scale=0.2, seed_scale=1.0)
        trimmed = run_campaign(CampaignConfig(
            benchmark="libpng", fuzzer="bigmap", map_size=1 << 16,
            scale=0.2, seed_scale=1.0, virtual_seconds=0.3,
            max_real_execs=1_000, rng_seed=4, trim_seeds=True),
            built=built)
        # Each corpus entry still executes to a nonzero trace.
        coverage = evaluate_corpus(built.program, trimmed.corpus)
        assert coverage > 0


class TestPersistentMode:
    def test_fork_mode_is_slower(self):
        built = get_benchmark("zlib").build(scale=1.0, seed_scale=0.2)
        base = dict(benchmark="zlib", fuzzer="bigmap", map_size=1 << 16,
                    seed_scale=0.2, virtual_seconds=0.3,
                    max_real_execs=600, rng_seed=1)
        persistent = run_campaign(CampaignConfig(**base), built=built)
        fork = run_campaign(CampaignConfig(persistent_mode=False,
                                           **base), built=built)
        assert fork.throughput < persistent.throughput / 2


class TestEnsemble:
    @pytest.fixture(scope="class")
    def built(self):
        return get_benchmark("libpng").build(scale=0.2, seed_scale=1.0)

    def _configs(self, metrics, **overrides):
        base = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 18, scale=0.2, seed_scale=1.0,
                    virtual_seconds=0.4, max_real_execs=600)
        base.update(overrides)
        return [CampaignConfig(metric=m, rng_seed=i * 11, **base)
                for i, m in enumerate(metrics)]

    def test_heterogeneous_metrics_run(self, built):
        summary = run_ensemble(
            self._configs(["afl-edge", "ngram3"]), built=built)
        assert summary.n_instances == 2
        metrics = {r.metric for r in summary.per_instance}
        assert metrics == {"afl-edge", "ngram3"}

    def test_mismatched_targets_rejected(self, built):
        configs = self._configs(["afl-edge", "afl-edge"])
        from dataclasses import replace
        from repro.core.errors import CampaignConfigError
        bad = [configs[0], replace(configs[1], benchmark="zlib")]
        with pytest.raises(CampaignConfigError):
            run_ensemble(bad, built=built)

    def test_instance_count_consistency_checked(self, built):
        from repro.core.errors import CampaignConfigError
        from repro.fuzzer import ParallelSession
        with pytest.raises(CampaignConfigError):
            ParallelSession(self._configs(["afl-edge", "ngram3"]),
                            n_instances=3, built=built)

    def test_cross_pollination(self, built):
        """Members see coverage found by other metrics via the sync."""
        summary = run_ensemble(
            self._configs(["afl-edge", "ngram3"],
                          virtual_seconds=0.8), built=built)
        discovered = [r.discovered_locations
                      for r in summary.per_instance]
        # Both members end with substantial coverage (syncs worked).
        assert min(discovered) > 0.5 * max(discovered)


def _multiset_oracle(data):
    """Trace stand-in that depends only on the non-zero bytes."""
    return hash(bytes(b for b in data if b))


class TestTrimGeometry:
    """AFL ``trim_case`` parity: the removal unit is recomputed from the
    current length each round, the final partial chunk is attempted, and
    the unit halves every round whether or not progress was made."""

    def test_budget_capped_trim_reaches_afl_result(self):
        # 21 essential bytes scattered through 38; under a 40-execution
        # budget the AFL geometry gets down to 28 bytes. The stale
        # pre-fix geometry burned the budget re-scanning at one unit
        # size and left 33.
        data = bytes.fromhex(
            '00c5010001000101010000000001010100d5010105010000'
            '0001010000e401003a0000010001')
        result = trim_input(data, _multiset_oracle, max_executions=40)
        assert len(result.data) == 28

    def test_unit_halves_even_after_progress(self):
        # One essential byte every 8 over 96 bytes. Always-halving
        # geometry finishes in 125 executions; repeating the same unit
        # after a fruitful round took 163.
        data = bytearray(96)
        for i in range(0, 96, 8):
            data[i] = (i // 8) + 1
        result = trim_input(bytes(data), _multiset_oracle,
                            max_executions=100_000)
        assert len(result.data) == 12
        assert result.executions == 125

    def test_final_partial_chunk_is_attempted(self):
        # Essential prefix plus a tail shorter than the removal unit:
        # the partial chunk must still be tried, not skipped.
        data = bytes([1, 2, 3, 4]) + bytes(60)
        result = trim_input(data, _multiset_oracle, max_executions=24)
        assert result.data == bytes([1, 2, 3, 4])
        assert result.executions <= 24

    def test_budget_never_exceeded_by_geometry(self):
        data = bytes([1, 2, 3, 4]) + bytes(60)
        for budget in (1, 5, 12, 24):
            calls = []

            def oracle(d):
                calls.append(1)
                return _multiset_oracle(d)

            trim_input(data, oracle, max_executions=budget)
            assert len(calls) <= budget
