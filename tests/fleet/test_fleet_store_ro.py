"""Read-only stores: write refusal, live-writer concurrency."""

import dataclasses

import pytest

from repro.core.errors import FleetStateError
from repro.fleet.spec import FleetSpec
from repro.fleet.store import DONE, PENDING, ResultsStore
from repro.fuzzer import CampaignConfig, run_campaign

_TEMPLATE = run_campaign(CampaignConfig(
    benchmark="zlib", fuzzer="bigmap", map_size=1 << 14, scale=0.05,
    seed_scale=0.02, virtual_seconds=1.0, max_real_execs=400))


def _trials(n_trials=3):
    return FleetSpec(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                     map_sizes=(1 << 16,), n_trials=n_trials).expand()


def _result(execs=1000, edges=40):
    return dataclasses.replace(
        _TEMPLATE, execs=execs, virtual_seconds=2.0,
        throughput=execs / 2.0, discovered_locations=edges,
        unique_crashes=0, unique_hangs=0, stopped_by="budget",
        coverage_curve=[(0.5, edges // 2), (2.0, edges)])


class TestReadOnlyRefusal:
    def test_every_write_api_raises(self, tmp_path):
        path = str(tmp_path / "results.sqlite")
        trials = _trials()
        with ResultsStore(path) as store:
            store.init_states([t.trial_id for t in trials])
        with ResultsStore(path, mode=ResultsStore.RO) as store:
            attempts = (
                lambda: store.init_states([99]),
                lambda: store.transition(0, "dispatched"),
                lambda: store.record_trial(trials[0], _result(),
                                           attempts=1),
                lambda: store.record_measurement(0, 1, 5.0, 10, 8,
                                                 0.0),
            )
            for attempt in attempts:
                with pytest.raises(FleetStateError, match="read-only"):
                    attempt()

    def test_ro_memory_store_is_rejected(self):
        with pytest.raises(ValueError):
            ResultsStore(":memory:", mode=ResultsStore.RO)

    def test_unknown_mode_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store mode"):
            ResultsStore(str(tmp_path / "s.sqlite"), mode="rx")

    def test_ro_open_of_missing_file_fails_without_creating_it(
            self, tmp_path):
        path = tmp_path / "never-created.sqlite"
        with pytest.raises(Exception):
            with ResultsStore(str(path), mode=ResultsStore.RO) as st:
                st.trial_rows()
        assert not path.exists()


class TestConcurrentReader:
    def test_ro_reader_tracks_a_writing_dispatcher(self, tmp_path):
        """The dashboard scenario: an ro store polls while the
        dispatcher commits trial results to the same file."""
        path = str(tmp_path / "results.sqlite")
        trials = _trials()
        with ResultsStore(path) as writer:
            writer.init_states([t.trial_id for t in trials])
            with ResultsStore(path, mode=ResultsStore.RO) as reader:
                counts = reader.state_counts()
                assert counts[PENDING] == len(trials)
                assert counts.get(DONE, 0) == 0

                for i, trial in enumerate(trials):
                    writer.transition(trial.trial_id, "dispatched")
                    writer.transition(trial.trial_id, "running")
                    writer.record_trial(trial,
                                        _result(execs=1000 + i),
                                        attempts=1)
                    writer.transition(trial.trial_id, DONE)
                    # Each commit is visible to the ro reader at its
                    # next query, mid-campaign included.
                    counts = reader.state_counts()
                    assert counts.get(DONE, 0) == i + 1
                    rows = reader.trial_rows(status=DONE)
                    assert len(rows) == i + 1

                assert reader.n_trials() == len(trials)
                assert [r["execs"] for r in
                        reader.trial_rows(status=DONE)][:1] == [1000]
