"""Fleet chaos harness: kills, damage, lock storms — identical rows."""

import pytest

from repro.core.errors import FaultPlanError, FleetDispatchError
from repro.faults import (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE,
                          DISPATCHER_KILL, STORE_LOCK, WORKER_KILL,
                          FleetFaultEvent, FleetFaultPlan)
from repro.fleet import (ChaosController, FleetSpec, ResultsStore,
                         run_fleet, run_fleet_with_chaos)
from repro.fleet.spec import KILL
from repro.telemetry.recorder import SessionTelemetry


def _spec(**overrides):
    base = dict(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                map_sizes=(1 << 16,), n_trials=2, scale=0.05,
                seed_scale=0.02, virtual_seconds=2.0,
                max_real_execs=1200)
    base.update(overrides)
    return FleetSpec(**base)


def _ident_rows(store):
    # Column 7 (attempts) is retry bookkeeping — the one column chaos
    # may legitimately change.
    return [tuple(r)[:7] + tuple(r)[8:] for r in store.trial_rows()]


class TestLowering:
    def test_worker_faults_become_trial_faults(self):
        plan = FleetFaultPlan([
            FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=2,
                            at_segment=1)])
        lowered = ChaosController(plan).lower_onto(_spec())
        assert lowered.faults[2].kind == KILL
        assert lowered.faults[2].at_segment == 1

    def test_plan_without_worker_faults_leaves_spec_alone(self):
        spec = _spec()
        plan = FleetFaultPlan(
            [FleetFaultEvent(at_tick=1, kind=DISPATCHER_KILL)])
        assert ChaosController(plan).lower_onto(spec) is spec


class TestChaosRuns:
    def test_empty_plan_is_the_identity(self):
        clean_store = ResultsStore()
        run_fleet(_spec(), store=clean_store, measure=False)
        chaos_store = ResultsStore()
        outcome = run_fleet_with_chaos(
            _spec(), FleetFaultPlan(), store=chaos_store,
            measure=False)
        assert outcome.dispatcher_restarts == 0
        assert outcome.events_fired == 0
        assert [tuple(r) for r in chaos_store.trial_rows()] == \
            [tuple(r) for r in clean_store.trial_rows()]

    def test_dispatcher_kills_are_survived_bit_identically(self):
        clean_store = ResultsStore()
        run_fleet(_spec(), store=clean_store, measure=False)
        plan = FleetFaultPlan([
            FleetFaultEvent(at_tick=1, kind=DISPATCHER_KILL),
            FleetFaultEvent(at_tick=3, kind=DISPATCHER_KILL)])
        store = ResultsStore()
        outcome = run_fleet_with_chaos(_spec(), plan, store=store,
                                       measure=False)
        assert outcome.dispatcher_restarts == 2
        assert outcome.summary.completed == 4
        assert outcome.summary.resumed
        assert _ident_rows(store) == _ident_rows(clean_store)

    def test_store_lock_storm_is_retried(self):
        telemetry = SessionTelemetry()
        plan = FleetFaultPlan([
            FleetFaultEvent(at_tick=2, kind=STORE_LOCK, lock_count=2)])
        store = ResultsStore()
        outcome = run_fleet_with_chaos(_spec(), plan, store=store,
                                       telemetry=telemetry,
                                       measure=False)
        assert outcome.summary.store_retries == 2
        assert outcome.summary.completed == 4
        retries = [e for e in telemetry.session.events
                   if e["kind"] == "store_retry"]
        assert len(retries) == 2

    def test_checkpoint_damage_is_detected_and_survived(self):
        # Kill trial 1's worker after segment 1 (a checkpoint exists),
        # then damage that checkpoint before the retry re-reads it.
        clean_plan = FleetFaultPlan([
            FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=1,
                            at_segment=1)])
        clean_store = ResultsStore()
        run_fleet(ChaosController(clean_plan).lower_onto(_spec()),
                  store=clean_store, measure=False)

        for damage in (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE):
            # Tick 1: trial 0 runs. Tick 2: trial 1 dies post-segment-1
            # (checkpoint now on disk, retry queued). Tick 3: damage
            # the checkpoint just before the retry re-reads it.
            plan = FleetFaultPlan([
                FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=1,
                                at_segment=1),
                FleetFaultEvent(at_tick=3, kind=damage, trial=1)])
            store = ResultsStore()
            outcome = run_fleet_with_chaos(_spec(), plan, store=store,
                                           measure=False)
            incidents = (outcome.summary.integrity_events +
                         outcome.summary.quarantined_artifacts)
            assert incidents >= 1, damage
            assert outcome.summary.completed == 4
            assert _ident_rows(store) == _ident_rows(clean_store)

    def test_chaos_run_repeats_bit_identically(self):
        plan_events = [
            FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=1,
                            at_segment=1),
            FleetFaultEvent(at_tick=2, kind=DISPATCHER_KILL),
            FleetFaultEvent(at_tick=4, kind=STORE_LOCK, lock_count=2),
        ]
        rows = []
        for _ in range(2):
            store = ResultsStore()
            run_fleet_with_chaos(_spec(), FleetFaultPlan(plan_events),
                                 store=store, measure=False)
            rows.append([tuple(r) for r in store.trial_rows()])
        assert rows[0] == rows[1]   # attempts included: same chaos

    def test_plan_beyond_fleet_is_rejected(self):
        plan = FleetFaultPlan([
            FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=99)])
        with pytest.raises(FaultPlanError):
            run_fleet_with_chaos(_spec(), plan, measure=False)

    def test_kill_budget_is_bounded(self):
        plan = FleetFaultPlan([
            FleetFaultEvent(at_tick=t, kind=DISPATCHER_KILL)
            for t in range(1, 5)])
        with pytest.raises(FleetDispatchError, match="giving up"):
            run_fleet_with_chaos(_spec(), plan, measure=False,
                                 max_dispatcher_restarts=2)
