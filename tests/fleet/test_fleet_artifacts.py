"""repro.fleet.artifacts: seals, atomic writes, quarantine, heartbeats."""

import os
import pickle

import pytest

from repro.core.errors import ArtifactIntegrityError
from repro.fleet.artifacts import (HEARTBEAT_FILE, INTEGRITY_LOG, MAGIC,
                                   QUARANTINE_SUFFIX, TRAILER_SIZE,
                                   atomic_write_bytes, log_integrity,
                                   quarantine, read_artifact,
                                   read_heartbeat, read_integrity_log,
                                   seal, unseal, write_artifact,
                                   write_heartbeat)


class TestSeal:
    def test_round_trip(self):
        body = b"campaign state" * 100
        assert unseal(seal(body)) == body

    def test_sealed_size_is_body_plus_trailer(self):
        assert len(seal(b"xy")) == 2 + TRAILER_SIZE

    def test_empty_body_round_trips(self):
        assert unseal(seal(b"")) == b""

    def test_too_short_rejected(self):
        with pytest.raises(ArtifactIntegrityError, match="too short"):
            unseal(b"tiny")

    def test_missing_magic_rejected(self):
        data = seal(b"payload")[:-len(MAGIC)] + b"XXXX"
        with pytest.raises(ArtifactIntegrityError, match="magic"):
            unseal(data)

    def test_truncation_rejected_by_length_check(self):
        # Cut bytes out of the *body*: the trailer survives but claims
        # a longer body than remains.
        sealed = seal(b"A" * 64)
        torn = sealed[:10] + sealed[20:]
        with pytest.raises(ArtifactIntegrityError, match="truncated"):
            unseal(torn)

    def test_bitflip_rejected_by_digest(self):
        sealed = bytearray(seal(b"B" * 64))
        sealed[5] ^= 0xFF
        with pytest.raises(ArtifactIntegrityError, match="digest"):
            unseal(bytes(sealed))


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "blob")
        atomic_write_bytes(path, b"hello")
        with open(path, "rb") as fh:
            assert fh.read() == b"hello"

    def test_leaves_no_temp_file(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "blob"), b"hello")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob"]

    def test_overwrites_in_place(self, tmp_path):
        path = str(tmp_path / "blob")
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        with open(path, "rb") as fh:
            assert fh.read() == b"two"


class TestArtifactRoundTrip:
    def test_payload_round_trips(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        payload = {"segment": 3, "corpus": [b"a", b"bb"]}
        write_artifact(path, payload)
        assert read_artifact(path) == payload

    def test_missing_file_raises_file_not_found(self, tmp_path):
        # Absence and corruption are different signals: resume logic
        # branches on them differently.
        with pytest.raises(FileNotFoundError):
            read_artifact(str(tmp_path / "nope.pkl"))

    def test_truncated_artifact_detected(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        write_artifact(path, list(range(100)))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - TRAILER_SIZE // 2)
        with pytest.raises(ArtifactIntegrityError):
            read_artifact(path)

    def test_corrupted_artifact_detected(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        write_artifact(path, list(range(100)))
        with open(path, "r+b") as fh:
            fh.seek(7)
            byte = fh.read(1)
            fh.seek(7)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ArtifactIntegrityError):
            read_artifact(path)

    def test_unpicklable_despite_seal_is_integrity_error(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        atomic_write_bytes(path, seal(b"not a pickle"))
        with pytest.raises(ArtifactIntegrityError, match="unpicklable"):
            read_artifact(path)

    def test_foreign_file_is_integrity_error(self, tmp_path):
        # A plain (unsealed) pickle predating the seal format must be
        # rejected, not silently trusted.
        path = str(tmp_path / "legacy.pkl")
        with open(path, "wb") as fh:
            fh.write(pickle.dumps({"segment": 1}))
        with pytest.raises(ArtifactIntegrityError):
            read_artifact(path)


class TestQuarantine:
    def test_moves_file_aside(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        atomic_write_bytes(path, b"corrupt")
        target = quarantine(path)
        assert target == path + QUARANTINE_SUFFIX
        assert not os.path.exists(path)
        assert os.path.exists(target)

    def test_frees_the_original_name(self, tmp_path):
        path = str(tmp_path / "ckpt.pkl")
        write_artifact(path, "bad")
        quarantine(path)
        write_artifact(path, "good")
        assert read_artifact(path) == "good"

    def test_missing_file_is_noop(self, tmp_path):
        quarantine(str(tmp_path / "never-existed"))
        assert list(tmp_path.iterdir()) == []


class TestHeartbeat:
    def test_round_trips(self, tmp_path):
        workdir = str(tmp_path)
        write_heartbeat(workdir, 7)
        assert read_heartbeat(workdir) == 7

    def test_missing_reads_minus_one(self, tmp_path):
        assert read_heartbeat(str(tmp_path)) == -1

    def test_torn_heartbeat_reads_minus_one(self, tmp_path):
        (tmp_path / HEARTBEAT_FILE).write_text("3")
        assert read_heartbeat(str(tmp_path)) == -1

    def test_checksum_mismatch_reads_minus_one(self, tmp_path):
        (tmp_path / HEARTBEAT_FILE).write_text("3 deadbeef0000\n")
        assert read_heartbeat(str(tmp_path)) == -1

    def test_garbage_reads_minus_one(self, tmp_path):
        (tmp_path / HEARTBEAT_FILE).write_bytes(b"\xff\xfe garbage")
        assert read_heartbeat(str(tmp_path)) == -1


class TestIntegrityLog:
    def test_appends_and_reads_back(self, tmp_path):
        workdir = str(tmp_path)
        log_integrity(workdir, "checkpoint.pkl", "digest mismatch")
        log_integrity(workdir, "snap-001.pkl", "truncated")
        assert read_integrity_log(workdir) == [
            ("checkpoint.pkl", "digest mismatch"),
            ("snap-001.pkl", "truncated"),
        ]

    def test_missing_log_reads_empty(self, tmp_path):
        assert read_integrity_log(str(tmp_path)) == []

    def test_newlines_in_reason_are_flattened(self, tmp_path):
        workdir = str(tmp_path)
        log_integrity(workdir, "a", "line one\nline two")
        assert read_integrity_log(workdir) == [("a", "line one line two")]

    def test_torn_tail_line_is_skipped(self, tmp_path):
        workdir = str(tmp_path)
        log_integrity(workdir, "a", "ok")
        with open(str(tmp_path / INTEGRITY_LOG), "a") as fh:
            fh.write("no-tab-separator")
        assert read_integrity_log(workdir) == [("a", "ok")]
