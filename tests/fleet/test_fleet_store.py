"""ResultsStore: round-trips, filtering, metric sampling, persistence."""

import dataclasses
import os

import pytest

from repro.fleet.spec import FleetSpec
from repro.fleet.store import DONE, LOST, METRIC_COLUMNS, ResultsStore
from repro.fuzzer import CampaignConfig, run_campaign

_TEMPLATE = run_campaign(CampaignConfig(
    benchmark="zlib", fuzzer="bigmap", map_size=1 << 14, scale=0.05,
    seed_scale=0.02, virtual_seconds=1.0, max_real_execs=400))


def _trials(n_trials=2):
    return FleetSpec(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                     map_sizes=(1 << 16,), n_trials=n_trials).expand()


def _result(execs=1000, edges=40, crashes=1):
    return dataclasses.replace(
        _TEMPLATE, execs=execs, virtual_seconds=2.0,
        throughput=execs / 2.0, discovered_locations=edges,
        unique_crashes=crashes, unique_hangs=0, stopped_by="budget",
        coverage_curve=[(0.5, edges // 2), (2.0, edges)])


class TestRoundTrip:
    def test_trial_row_round_trips(self):
        trials = _trials()
        with ResultsStore() as store:
            store.record_trial(trials[0], _result(), attempts=1)
            (row,) = store.trial_rows()
            assert row["trial_id"] == 0
            assert row["status"] == DONE
            assert row["attempts"] == 1
            assert row["execs"] == 1000
            assert row["edges"] == 40
            assert row["unique_crashes"] == 1
            assert row["stopped_by"] == "budget"

    def test_record_is_idempotent_per_trial(self):
        trials = _trials()
        with ResultsStore() as store:
            store.record_trial(trials[0], _result(execs=10), attempts=1)
            store.record_trial(trials[0], _result(execs=99), attempts=2)
            (row,) = store.trial_rows()
            assert row["execs"] == 99
            assert row["attempts"] == 2

    def test_coverage_curve_round_trips(self):
        trials = _trials()
        with ResultsStore() as store:
            store.record_trial(trials[0], _result(edges=40), attempts=1)
            assert store.coverage_curve(0) == [(0.5, 20), (2.0, 40)]
            assert store.coverage_curve(99) == []

    def test_lost_trial(self):
        trials = _trials()
        with ResultsStore() as store:
            store.record_lost(trials[1], attempts=4)
            (row,) = store.trial_rows()
            assert row["status"] == LOST
            assert row["execs"] is None
            assert store.lost_trials() == [1]
            assert store.attempts(1) == 4

    def test_measurements_round_trip(self):
        with ResultsStore() as store:
            store.record_measurement(3, snapshot=1, virtual_seconds=0.5,
                                     corpus_size=8, true_edges=33,
                                     lag_seconds=0.01)
            store.record_measurement(3, snapshot=2, virtual_seconds=1.0,
                                     corpus_size=9, true_edges=35,
                                     lag_seconds=0.02)
            rows = store.measurements(3)
            assert [r["snapshot"] for r in rows] == [1, 2]
            assert [r["true_edges"] for r in rows] == [33, 35]


class TestQueries:
    def _populated(self):
        store = ResultsStore()
        for trial in _trials(n_trials=2):
            store.record_trial(
                trial, _result(execs=1000 + trial.trial_id,
                               edges=30 + trial.trial_id), attempts=1)
        return store

    def test_sample_is_replica_ordered_per_cell(self):
        with self._populated() as store:
            afl = store.sample("execs", benchmark="zlib", fuzzer="afl",
                               map_size=1 << 16)
            big = store.sample("execs", benchmark="zlib",
                               fuzzer="bigmap", map_size=1 << 16)
            assert afl == [1000.0, 1001.0]
            assert big == [1002.0, 1003.0]

    def test_sample_excludes_lost_trials(self):
        trials = _trials(n_trials=2)
        with ResultsStore() as store:
            store.record_trial(trials[0], _result(), attempts=1)
            store.record_lost(trials[1], attempts=4)
            values = store.sample("execs", benchmark="zlib",
                                  fuzzer="afl", map_size=1 << 16)
            assert len(values) == 1

    def test_sample_rejects_unknown_metric(self):
        with self._populated() as store:
            with pytest.raises(ValueError):
                store.sample("trial_id; DROP TABLE trials",
                             benchmark="zlib", fuzzer="afl",
                             map_size=1 << 16)

    def test_every_metric_column_samples(self):
        with self._populated() as store:
            for metric in METRIC_COLUMNS:
                values = store.sample(metric, benchmark="zlib",
                                      fuzzer="afl", map_size=1 << 16)
                assert len(values) == 2

    def test_groups_and_fuzzers_sorted(self):
        with self._populated() as store:
            assert store.groups() == [("zlib", 1 << 16)]
            assert store.fuzzers() == ["afl", "bigmap"]

    def test_filters(self):
        with self._populated() as store:
            assert len(store.trial_rows(fuzzer="afl")) == 2
            assert len(store.trial_rows(benchmark="nope")) == 0
            assert store.n_trials() == 4


class TestPersistence:
    def test_reopened_store_serves_report_queries(self, tmp_path):
        path = os.path.join(str(tmp_path), "fleet.sqlite")
        trials = _trials()
        with ResultsStore(path) as store:
            for trial in trials:
                store.record_trial(trial, _result(), attempts=1)
        with ResultsStore(path) as reopened:
            assert reopened.n_trials() == len(trials)
            assert reopened.sample(
                "edges", benchmark="zlib", fuzzer="bigmap",
                map_size=1 << 16) == [40.0, 40.0]
