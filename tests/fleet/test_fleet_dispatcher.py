"""FleetDispatcher on the inline backend: determinism, telemetry,
retry handling, measurement — everything except real processes."""

import pytest

from repro.faults import RestartPolicy
from repro.fleet import (FleetDispatcher, FleetSpec, ResultsStore,
                         TrialFault)
from repro.fleet.spec import KILL, STALL
from repro.telemetry.recorder import SessionTelemetry


def _spec(**overrides):
    base = dict(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                map_sizes=(1 << 16,), n_trials=2, scale=0.05,
                seed_scale=0.02, virtual_seconds=2.0,
                max_real_execs=1200)
    base.update(overrides)
    return FleetSpec(**base)


def _run(spec, telemetry=None, measure=False):
    store = ResultsStore()
    summary = FleetDispatcher(spec, store=store, telemetry=telemetry,
                              measure=measure).run()
    return summary, store


class TestDispatch:
    def test_every_trial_lands_a_row(self):
        summary, store = _run(_spec())
        assert summary.n_trials == 4
        assert summary.completed == 4
        assert summary.lost == []
        assert store.n_trials() == 4
        assert all(store.attempts(i) == 1 for i in range(4))

    def test_runs_are_bit_identical(self):
        _, store_a = _run(_spec())
        _, store_b = _run(_spec())
        rows_a = [tuple(row) for row in store_a.trial_rows()]
        rows_b = [tuple(row) for row in store_b.trial_rows()]
        assert rows_a == rows_b

    def test_fleet_rows_match_direct_campaigns(self):
        # The dispatcher adds orchestration, not semantics: each row
        # must equal a plain run_campaign of the trial's config.
        from repro.fuzzer import run_campaign
        spec = _spec(n_trials=1)
        _, store = _run(spec)
        for trial in spec.expand():
            row = store.trial_rows(fuzzer=trial.fuzzer)[0]
            direct = run_campaign(trial.config)
            assert row["execs"] == direct.execs
            assert row["edges"] == direct.discovered_locations
            assert row["throughput"] == pytest.approx(direct.throughput)

    def test_telemetry_lifecycle_events(self):
        telemetry = SessionTelemetry()
        summary, _ = _run(_spec(), telemetry=telemetry, measure=True)
        events = telemetry.session.events
        kinds = [event["kind"] for event in events]
        assert kinds.count("trial_dispatch") == summary.n_trials
        assert kinds.count("trial_finish") == summary.n_trials
        assert kinds.count("measurement") == \
            summary.measured_snapshots > 0
        dispatches = [e for e in events
                      if e["kind"] == "trial_dispatch"]
        assert [e["trial"] for e in dispatches] == list(range(4))
        assert all(e["attempt"] == 0 for e in dispatches)
        # Logical clock: strictly increasing event times.
        times = [e["t"] for e in events]
        assert times == sorted(times) and len(set(times)) == len(times)

    def test_telemetry_stream_is_deterministic(self):
        streams = []
        for _ in range(2):
            telemetry = SessionTelemetry()
            _run(_spec(), telemetry=telemetry)
            streams.append(telemetry.session.events)
        assert streams[0] == streams[1]


class TestRetry:
    def test_injected_kill_retries_to_identical_result(self):
        clean_spec = _spec()
        faulted = _spec(faults={1: TrialFault(kind=KILL,
                                              at_segment=1)})
        _, clean_store = _run(clean_spec)
        telemetry = SessionTelemetry()
        summary, store = _run(faulted, telemetry=telemetry)
        assert summary.completed == 4
        assert summary.retries == 1
        assert store.attempts(1) == 2
        clean_rows = [tuple(r) for r in clean_store.trial_rows()]
        rows = [tuple(r) for r in store.trial_rows()]
        # Attempt counts differ for the faulted trial; results do not.
        for clean, seen in zip(clean_rows, rows):
            assert clean[:7] == seen[:7]
            assert clean[8:] == seen[8:]
        retry = [e for e in telemetry.session.events
                 if e["kind"] == "trial_retry"]
        assert len(retry) == 1
        assert retry[0]["trial"] == 1
        assert retry[0]["resumed_from_checkpoint"] == 1
        assert "crashed" in retry[0]["reason"]

    def test_stall_fault_labels_reason(self):
        telemetry = SessionTelemetry()
        summary, _ = _run(
            _spec(faults={0: TrialFault(kind=STALL, at_segment=1)}),
            telemetry=telemetry)
        assert summary.retries == 1
        retry = [e for e in telemetry.session.events
                 if e["kind"] == "trial_retry"]
        assert "stalled" in retry[0]["reason"]

    def test_fault_at_segment_zero_restarts_from_scratch(self):
        telemetry = SessionTelemetry()
        summary, store = _run(
            _spec(faults={2: TrialFault(kind=KILL, at_segment=0)}),
            telemetry=telemetry)
        assert summary.completed == 4
        retry = [e for e in telemetry.session.events
                 if e["kind"] == "trial_retry"]
        assert retry[0]["resumed_from_checkpoint"] == 0

    def test_zero_restart_budget_loses_faulted_trial(self):
        telemetry = SessionTelemetry()
        store = ResultsStore()
        spec = _spec(faults={1: TrialFault(kind=KILL, at_segment=1)})
        summary = FleetDispatcher(
            spec, store=store, telemetry=telemetry,
            retry_policy=RestartPolicy(max_restarts=0),
            measure=False).run()
        assert summary.lost == [1]
        assert summary.completed == 3
        assert store.lost_trials() == [1]
        lost_row = store.trial_rows(status="lost")[0]
        assert lost_row["trial_id"] == 1
        finishes = [e for e in telemetry.session.events
                    if e["kind"] == "trial_finish" and
                    e["status"] == "lost"]
        assert len(finishes) == 1


class TestMeasurement:
    def test_measurements_recorded_per_snapshot(self):
        summary, store = _run(_spec(), measure=True)
        assert summary.measured_snapshots > 0
        total = 0
        for trial_id in range(summary.n_trials):
            rows = store.measurements(trial_id)
            assert [r["snapshot"] for r in rows] == \
                list(range(1, len(rows) + 1))
            for row in rows:
                assert row["true_edges"] > 0
                assert row["corpus_size"] > 0
                assert row["lag_seconds"] >= 0.0
            total += len(rows)
        assert total == summary.measured_snapshots

    def test_true_edges_monotone_within_trial(self):
        _, store = _run(_spec(n_trials=1), measure=True)
        for trial_id in range(2):
            edges = [r["true_edges"]
                     for r in store.measurements(trial_id)]
            assert edges == sorted(edges)
