"""FleetSpec expansion: determinism, ordering, seed pairing,
validation."""

import pytest

from repro.core.errors import FleetSpecError
from repro.fleet.spec import (KILL, REPLICA_SEED_STRIDE, FleetSpec,
                              TrialFault)


def _spec(**overrides):
    base = dict(fuzzers=("afl", "bigmap"), benchmarks=("zlib", "gvn"),
                map_sizes=(1 << 14, 1 << 16), n_trials=3)
    base.update(overrides)
    return FleetSpec(**base)


class TestExpansion:
    def test_count_matches_grid(self):
        spec = _spec()
        trials = spec.expand()
        assert len(trials) == spec.n_expanded == 2 * 2 * 2 * 3

    def test_trial_ids_dense_and_ordered(self):
        trials = _spec().expand()
        assert [t.trial_id for t in trials] == list(range(len(trials)))

    def test_benchmark_major_order(self):
        trials = _spec().expand()
        # First block: benchmark zlib, smallest map, first fuzzer.
        first = trials[0]
        assert (first.benchmark, first.map_size, first.fuzzer,
                first.replica) == ("zlib", 1 << 14, "afl", 0)
        # Benchmarks change slowest.
        boundary = len(trials) // 2
        assert all(t.benchmark == "zlib" for t in trials[:boundary])
        assert all(t.benchmark == "gvn" for t in trials[boundary:])

    def test_expansion_is_deterministic(self):
        assert _spec().expand() == _spec().expand()

    def test_seed_pairing_across_fuzzers(self):
        # Klees-style pairing: replica k of every fuzzer draws the
        # same seed, so comparisons are paired on randomness.
        trials = _spec(base_seed=42).expand()
        by_key = {}
        for t in trials:
            by_key.setdefault((t.benchmark, t.map_size, t.replica),
                              set()).add(t.rng_seed)
        for seeds in by_key.values():
            assert len(seeds) == 1
        replica_seeds = sorted({t.rng_seed for t in trials})
        assert replica_seeds == [42 + k * REPLICA_SEED_STRIDE
                                 for k in range(3)]

    def test_config_carries_cell(self):
        for t in _spec(scale=0.07, virtual_seconds=9.0).expand():
            assert t.config.benchmark == t.benchmark
            assert t.config.fuzzer == t.fuzzer
            assert t.config.map_size == t.map_size
            assert t.config.rng_seed == t.rng_seed
            assert t.config.scale == 0.07
            assert t.config.virtual_seconds == 9.0

    def test_fault_attaches_to_its_trial_only(self):
        fault = TrialFault(kind=KILL, at_segment=2)
        trials = _spec(faults={5: fault}).expand()
        assert trials[5].fault == fault
        assert all(t.fault is None for t in trials if t.trial_id != 5)


class TestCheckpointInterval:
    def test_defaults_to_quarter_budget(self):
        assert _spec(virtual_seconds=8.0).checkpoint_interval == 2.0

    def test_explicit_interval_wins(self):
        spec = _spec(virtual_seconds=8.0, snapshot_interval=0.5)
        assert spec.checkpoint_interval == 0.5


class TestValidation:
    @pytest.mark.parametrize("axis", ["fuzzers", "benchmarks",
                                      "map_sizes"])
    def test_empty_axis_rejected(self, axis):
        with pytest.raises(FleetSpecError):
            _spec(**{axis: ()})

    def test_zero_trials_rejected(self):
        with pytest.raises(FleetSpecError):
            _spec(n_trials=0)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(FleetSpecError):
            _spec(snapshot_interval=0.0)

    def test_out_of_range_fault_rejected(self):
        with pytest.raises(FleetSpecError):
            _spec(faults={24: TrialFault(kind=KILL)})

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(FleetSpecError):
            TrialFault(kind="meteor")
