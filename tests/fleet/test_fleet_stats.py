"""Reference-value tests for repro.fleet.stats.

The Mann-Whitney and A12 golden values below were computed offline
with scipy 1.17.1 (``scipy.stats.mannwhitneyu(x, y,
method="asymptotic")``, i.e. the tie-corrected normal approximation
with continuity correction) and are hardcoded so the runtime
implementation stays numpy-only. Bootstrap CIs are pinned against
analytic edge cases and seeded-reproducibility invariants rather than
scipy (scipy's BCa interval is a different estimator by design).
"""

import math

import numpy as np
import pytest

from repro.fleet.stats import (bootstrap_ci, bootstrap_diff_ci,
                               mann_whitney_u, rank_with_ties,
                               vargha_delaney_a12)

# Each case: (x, y, U1, p_two_sided, p_greater, p_less, A12), with the
# p-values from scipy.stats.mannwhitneyu(method="asymptotic") and A12
# from the counting definition.
GOLDEN = {
    "no_ties": (
        [9.1, 8.4, 10.2, 7.7, 9.8], [7.2, 6.9, 8.1, 7.5, 6.4],
        24.0, 0.021571747948, 0.010785873974, 0.993907109822, 0.96),
    "ties": (
        [1, 2, 2, 3, 5], [2, 2, 3, 3, 4],
        10.0, 0.662311002998, 0.743794152655, 0.331155501499, 0.40),
    "larger": (
        [12, 15, 11, 19, 14, 16, 13, 18, 17, 20],
        [10, 13, 9, 12, 11, 14, 8, 15, 12, 13],
        83.5, 0.012247014938, 0.006123507469, 0.995072177040, 0.835),
    "overlap": (
        [3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.6],
        [2.0, 7.0, 1.8, 2.8, 1.0, 8.0],
        22.5, 0.886247707270, 0.443123853635, 0.612602129625,
        0.535714285714),
    "n1": ([5.0], [3.0], 1.0, 1.0, 0.5, 0.977249868052, 1.0),
    "n1_tie": ([5.0], [5.0], 0.5, 1.0, 1.0, 1.0, 0.5),
}


class TestRanks:
    def test_no_ties_is_ordinal(self):
        assert list(rank_with_ties([30.0, 10.0, 20.0])) == \
            [3.0, 1.0, 2.0]

    def test_ties_get_midranks(self):
        assert list(rank_with_ties([1.0, 2.0, 2.0, 3.0])) == \
            [1.0, 2.5, 2.5, 4.0]

    def test_all_tied(self):
        assert list(rank_with_ties([7.0, 7.0, 7.0])) == \
            [2.0, 2.0, 2.0]


class TestMannWhitneyGolden:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_u_statistic(self, name):
        x, y, u1, _, _, _, _ = GOLDEN[name]
        result = mann_whitney_u(x, y)
        assert result.u1 == pytest.approx(u1, abs=1e-12)
        assert result.u2 == pytest.approx(len(x) * len(y) - u1,
                                          abs=1e-12)

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_two_sided_matches_scipy(self, name):
        x, y, _, p2, _, _, _ = GOLDEN[name]
        result = mann_whitney_u(x, y, alternative="two-sided")
        assert result.p_value == pytest.approx(p2, rel=1e-9)

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_greater_matches_scipy(self, name):
        x, y, _, _, pg, _, _ = GOLDEN[name]
        result = mann_whitney_u(x, y, alternative="greater")
        assert result.p_value == pytest.approx(pg, rel=1e-9)

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_less_matches_scipy(self, name):
        x, y, _, _, _, pl, _ = GOLDEN[name]
        result = mann_whitney_u(x, y, alternative="less")
        assert result.p_value == pytest.approx(pl, rel=1e-9)

    def test_symmetry_two_sided(self):
        x, y = GOLDEN["larger"][0], GOLDEN["larger"][1]
        assert mann_whitney_u(x, y).p_value == pytest.approx(
            mann_whitney_u(y, x).p_value, rel=1e-12)

    def test_identical_samples_degenerate(self):
        values = [4.0, 4.0, 4.0, 4.0, 4.0]
        result = mann_whitney_u(values, values)
        assert result.p_value == 1.0
        assert result.u1 == pytest.approx(12.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [])

    def test_rejects_bad_alternative(self):
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [2.0], alternative="sideways")

    def test_p_value_bounded(self):
        rng = np.random.Generator(np.random.PCG64(5))
        for _ in range(20):
            x = rng.normal(size=rng.integers(1, 9)).tolist()
            y = rng.normal(size=rng.integers(1, 9)).tolist()
            for alt in ("two-sided", "greater", "less"):
                p = mann_whitney_u(x, y, alternative=alt).p_value
                assert 0.0 <= p <= 1.0


class TestVarghaDelaney:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_golden(self, name):
        x, y, _, _, _, _, a12 = GOLDEN[name]
        assert vargha_delaney_a12(x, y) == pytest.approx(a12,
                                                         abs=1e-12)

    def test_complement(self):
        x, y = GOLDEN["overlap"][0], GOLDEN["overlap"][1]
        assert vargha_delaney_a12(x, y) + vargha_delaney_a12(y, x) \
            == pytest.approx(1.0)

    def test_stochastic_dominance_is_one(self):
        assert vargha_delaney_a12([10, 11, 12], [1, 2, 3]) == 1.0

    def test_identical_is_half(self):
        assert vargha_delaney_a12([3.0, 3.0], [3.0, 3.0]) == 0.5


class TestBootstrap:
    def test_constant_sample_is_point_interval(self):
        lo, hi = bootstrap_ci([7.0, 7.0, 7.0, 7.0])
        assert lo == hi == 7.0

    def test_single_observation_is_point_interval(self):
        lo, hi = bootstrap_ci([42.0])
        assert lo == hi == 42.0

    def test_interval_brackets_statistic_support(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        lo, hi = bootstrap_ci(values, seed=11)
        assert min(values) <= lo <= hi <= max(values)

    def test_seeded_reproducibility(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values,
                                                            seed=3)
        assert bootstrap_ci(values, seed=3) != bootstrap_ci(values,
                                                            seed=4)

    def test_mean_statistic_converges_to_clt(self):
        # For a large-ish sample, the bootstrap percentile CI of the
        # mean should approximate mean +/- 1.96 se.
        rng = np.random.Generator(np.random.PCG64(0))
        values = rng.normal(loc=10.0, scale=2.0, size=200).tolist()
        lo, hi = bootstrap_ci(values, stat=np.mean,
                              n_resamples=4000, seed=1)
        mean = float(np.mean(values))
        se = float(np.std(values, ddof=1)) / math.sqrt(len(values))
        assert lo == pytest.approx(mean - 1.96 * se, abs=0.5 * se)
        assert hi == pytest.approx(mean + 1.96 * se, abs=0.5 * se)

    def test_confidence_widens_interval(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        lo90, hi90 = bootstrap_ci(values, confidence=0.90, seed=2)
        lo99, hi99 = bootstrap_ci(values, confidence=0.99, seed=2)
        assert lo99 <= lo90 and hi90 <= hi99

    def test_diff_ci_sign_separates_shifted_samples(self):
        x = [10.0, 11.0, 12.0, 13.0, 14.0]
        y = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = bootstrap_diff_ci(x, y, seed=0)
        assert lo > 0.0 and hi >= lo

    def test_diff_ci_identical_samples_is_zero(self):
        values = [5.0, 5.0, 5.0]
        assert bootstrap_diff_ci(values, values, seed=0) == (0.0, 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
