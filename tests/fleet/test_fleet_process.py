"""Fault-injection integration tests on the real process backend.

These tests dispatch trials to actual OS worker processes, kill or
stall them mid-trial, and assert the fleet recovers: the supervisor
retries from the persisted checkpoint and the final rows are
bit-identical to an unfaulted in-process run of the same spec. This is
the end-to-end proof behind the fleet's retry contract — campaign
determinism plus checkpoint replay means a worker death costs at most
one segment of wall time, never a divergent result.

Kept tight (tiny scale, 2s virtual budget, short stall timeout) so the
whole module runs in seconds.
"""

import pytest

from repro.fleet import (FleetDispatcher, FleetSpec, ProcessBackend,
                         ResultsStore, TrialFault)
from repro.fleet.spec import KILL, STALL
from repro.telemetry.recorder import SessionTelemetry

pytestmark = pytest.mark.slow

RESULT_COLUMNS = slice(8, None)   # trial rows after the attempts column
IDENT_COLUMNS = slice(0, 7)       # id/cell/seed/status echo


def _spec(**overrides):
    base = dict(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                map_sizes=(1 << 16,), n_trials=2, scale=0.05,
                seed_scale=0.02, virtual_seconds=2.0,
                max_real_execs=1200)
    base.update(overrides)
    return FleetSpec(**base)


def _reference_rows(spec_kwargs=None):
    """Unfaulted inline run of the same grid — the determinism oracle."""
    store = ResultsStore()
    FleetDispatcher(_spec(**(spec_kwargs or {})), store=store,
                    measure=False).run()
    return [tuple(row) for row in store.trial_rows()]


def _run_process(spec, telemetry=None, stall_timeout=1.5):
    store = ResultsStore()
    backend = ProcessBackend(n_workers=2, stall_timeout=stall_timeout)
    summary = FleetDispatcher(spec, store=store, backend=backend,
                              telemetry=telemetry, measure=False).run()
    return summary, store


class TestProcessBackendClean:
    def test_process_rows_match_inline_reference(self):
        summary, store = _run_process(_spec())
        assert summary.completed == 4 and not summary.lost
        rows = [tuple(row) for row in store.trial_rows()]
        assert rows == _reference_rows()


class TestKillRecovery:
    def test_killed_worker_retries_to_identical_result(self):
        telemetry = SessionTelemetry()
        spec = _spec(faults={1: TrialFault(kind=KILL, at_segment=1)})
        summary, store = _run_process(spec, telemetry=telemetry)

        assert summary.completed == 4
        assert summary.retries == 1
        assert summary.lost == []
        assert store.attempts(1) == 2

        reference = _reference_rows()
        rows = [tuple(row) for row in store.trial_rows()]
        for ref, seen in zip(reference, rows):
            assert ref[IDENT_COLUMNS] == seen[IDENT_COLUMNS]
            # Bit-identical results despite the mid-trial kill.
            assert ref[RESULT_COLUMNS] == seen[RESULT_COLUMNS]

        events = telemetry.session.events
        retries = [e for e in events if e["kind"] == "trial_retry"]
        assert len(retries) == 1
        assert retries[0]["trial"] == 1
        assert retries[0]["attempt"] == 1
        assert retries[0]["resumed_from_checkpoint"] == 1
        assert retries[0]["reason"].startswith("crashed")
        # The supervisor's own fault/restart events carry the story too.
        faults = [e for e in events if e["kind"] == "fault"]
        restarts = [e for e in events if e["kind"] == "restart"]
        assert len(faults) == len(restarts) == 1
        assert faults[0]["instance"] == 1
        assert faults[0]["status"] == "dead"

    def test_kill_before_first_checkpoint_restarts_from_scratch(self):
        telemetry = SessionTelemetry()
        spec = _spec(faults={0: TrialFault(kind=KILL, at_segment=0)})
        summary, store = _run_process(spec, telemetry=telemetry)
        assert summary.completed == 4 and store.attempts(0) == 2
        (retry,) = [e for e in telemetry.session.events
                    if e["kind"] == "trial_retry"]
        assert retry["resumed_from_checkpoint"] == 0
        rows = [tuple(row) for row in store.trial_rows()]
        assert [r[RESULT_COLUMNS] for r in rows] == \
            [r[RESULT_COLUMNS] for r in _reference_rows()]


class TestStallRecovery:
    def test_stalled_worker_is_terminated_and_retried(self):
        telemetry = SessionTelemetry()
        spec = _spec(faults={2: TrialFault(kind=STALL, at_segment=1)})
        summary, store = _run_process(spec, telemetry=telemetry)

        assert summary.completed == 4
        assert summary.retries == 1
        assert store.attempts(2) == 2
        rows = [tuple(row) for row in store.trial_rows()]
        assert [r[RESULT_COLUMNS] for r in rows] == \
            [r[RESULT_COLUMNS] for r in _reference_rows()]

        (retry,) = [e for e in telemetry.session.events
                    if e["kind"] == "trial_retry"]
        assert retry["trial"] == 2
        assert retry["reason"].startswith("stalled")
        assert retry["resumed_from_checkpoint"] == 1


class TestAcceptanceGrid:
    def test_two_fuzzers_two_benchmarks_five_trials_with_kill(self):
        # The issue's acceptance run: >= 2 fuzzers x >= 2 benchmarks
        # x >= 5 trials on real worker processes, surviving an
        # injected worker kill, with every trial accounted for.
        spec = _spec(benchmarks=("zlib", "libpng"), n_trials=5,
                     faults={3: TrialFault(kind=KILL, at_segment=1)})
        telemetry = SessionTelemetry()
        store = ResultsStore()
        backend = ProcessBackend(n_workers=4, stall_timeout=5.0)
        summary = FleetDispatcher(spec, store=store, backend=backend,
                                  telemetry=telemetry,
                                  measure=False).run()
        assert summary.n_trials == 20
        assert summary.completed == 20
        assert summary.lost == []
        assert summary.retries == 1
        assert store.attempts(3) == 2

        # Report over real-process rows carries the statistics.
        from repro.fleet import render_report
        report = render_report(store, spec)
        assert "Mann-Whitney" in report
        assert "p=" in report and "A12=" in report
        assert "95% CI" in report
        for benchmark in ("zlib", "libpng"):
            assert benchmark in report

        # Each cell sampled all five replicas.
        for fuzzer in spec.fuzzers:
            for benchmark in spec.benchmarks:
                values = store.sample("edges", benchmark=benchmark,
                                      fuzzer=fuzzer,
                                      map_size=1 << 16)
                assert len(values) == 5
