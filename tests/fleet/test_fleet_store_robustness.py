"""ResultsStore connection lifecycle, IO-fault retry, concurrency."""

import multiprocessing

import pytest

from repro.core.errors import FleetDispatchError
from repro.fleet import ResultsStore
from repro.fleet.store import DISPATCHED, PENDING


class TestConnectionLifecycle:
    def test_close_is_idempotent(self):
        store = ResultsStore()
        assert not store.closed
        store.close()
        store.close()
        assert store.closed

    def test_use_after_close_raises_dispatch_error(self):
        store = ResultsStore()
        store.close()
        with pytest.raises(FleetDispatchError, match="after close"):
            store.set_meta("k", "v")

    def test_context_manager_closes(self):
        with ResultsStore() as store:
            store.set_meta("k", "v")
        assert store.closed

    def test_reconnect_reapplies_pragmas(self, tmp_path):
        store = ResultsStore(str(tmp_path / "fleet.sqlite"))
        store.set_meta("k", "v")
        store.reconnect()
        assert store.get_meta("k") == "v"
        # busy_timeout is per-connection state: it must survive the
        # reconnect, or concurrent writers start failing fast.
        timeout = store._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0]
        assert timeout == store.busy_timeout

    def test_on_disk_store_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "fleet.sqlite")
        with ResultsStore(path) as store:
            store.init_states([0, 1])
            store.transition(0, DISPATCHED)
        with ResultsStore(path) as store:
            assert store.trial_state(0) == (DISPATCHED, 1)
            assert store.trial_state(1) == (PENDING, 0)


class TestInjectedIoFaults:
    def test_injected_faults_are_retried(self):
        store = ResultsStore()
        store.inject_io_faults(2)
        store.set_meta("k", "v")
        assert store.get_meta("k") == "v"
        assert store.write_retries == 2

    def test_on_retry_hook_sees_each_retry(self):
        calls = []
        store = ResultsStore()
        store.on_retry = lambda op, attempt, err: calls.append(
            (op, attempt, err))
        store.inject_io_faults(2)
        store.set_meta("k", "v")
        assert [(op, attempt) for op, attempt, _ in calls] == \
            [("set_meta", 1), ("set_meta", 2)]
        assert all("locked" in err for _, _, err in calls)

    def test_retry_budget_exhaustion_raises(self):
        store = ResultsStore(max_io_attempts=3)
        store.inject_io_faults(3)
        with pytest.raises(FleetDispatchError, match="after 3 attempts"):
            store.set_meta("k", "v")

    def test_backoff_schedule_is_a_pure_function_of_the_seed(self):
        # Same seed, same jitter draws: the retry delays (and thus the
        # whole recovery timeline) reproduce across runs.
        draws = []
        for _ in range(2):
            store = ResultsStore(retry_seed=7)
            draws.append([float(store._retry_rng.random())
                          for _ in range(4)])
        assert draws[0] == draws[1]


def _hammer(path, worker_id, n_ops, barrier):
    """Concurrent-writer child: its own connection, its own pragmas."""
    from repro.fleet import ResultsStore
    barrier.wait()   # maximise write overlap across processes
    with ResultsStore(path, busy_timeout=20000) as store:
        for i in range(n_ops):
            store.set_meta(f"w{worker_id}-{i}", str(i))
            store.transition(worker_id, DISPATCHED)
            store.transition(worker_id, PENDING)


class TestTwoProcessConcurrency:
    def test_concurrent_writers_never_see_database_locked(
            self, tmp_path):
        # Regression for the crash-resume contract's quiet
        # prerequisite: WAL + busy_timeout + bounded retry on *every*
        # connection. Without them this cross-process write storm
        # dies with sqlite3.OperationalError: database is locked.
        path = str(tmp_path / "fleet.sqlite")
        n_workers, n_ops = 3, 25
        with ResultsStore(path) as store:
            store.init_states(range(n_workers))
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(n_workers)
        procs = [ctx.Process(target=_hammer,
                             args=(path, w, n_ops, barrier))
                 for w in range(n_workers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)
        with ResultsStore(path) as store:
            for w in range(n_workers):
                for i in range(n_ops):
                    assert store.get_meta(f"w{w}-{i}") == str(i)
                state, attempt = store.trial_state(w)
                assert state == PENDING
                assert attempt == n_ops
