"""Durable trial state machine + crash-resume reconciliation."""

import os

import pytest

from repro.core.errors import (FleetDispatchError, FleetResumeError,
                               FleetStateError)
from repro.faults import (DISPATCHER_KILL, FleetFaultEvent,
                          FleetFaultPlan)
from repro.fleet import (DispatcherKilled, FleetDispatcher, FleetSpec,
                         ResultsStore)
from repro.fleet.chaos import ChaosController
from repro.fleet.store import (DISPATCHED, DONE, LOST, MEASURING,
                               PENDING, QUARANTINED, RUNNING,
                               TERMINAL_STATES)
from repro.fleet.workers import RESULT_FILE
from repro.telemetry.recorder import SessionTelemetry


def _spec(**overrides):
    base = dict(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                map_sizes=(1 << 16,), n_trials=2, scale=0.05,
                seed_scale=0.02, virtual_seconds=2.0,
                max_real_execs=1200)
    base.update(overrides)
    return FleetSpec(**base)


class TestStateMachine:
    def _store(self, n=3):
        store = ResultsStore()
        store.init_states(range(n))
        return store

    def test_init_states_starts_pending_attempt_zero(self):
        store = self._store()
        assert store.trial_state(0) == (PENDING, 0)
        assert store.state_counts() == {PENDING: 3}

    def test_init_states_is_idempotent(self):
        store = self._store()
        store.transition(0, DISPATCHED)
        store.init_states(range(3))
        # A resumed fleet re-inits; progress must survive.
        assert store.trial_state(0) == (DISPATCHED, 1)

    def test_dispatch_increments_monotonic_attempt(self):
        store = self._store()
        assert store.transition(0, DISPATCHED) == 1
        assert store.transition(0, PENDING) == 1
        assert store.transition(0, DISPATCHED) == 2
        assert store.trial_state(0) == (DISPATCHED, 2)

    def test_happy_path_walk(self):
        store = self._store()
        for state in (DISPATCHED, RUNNING, MEASURING, DONE):
            store.transition(1, state)
        assert store.trial_state(1) == (DONE, 1)

    def test_measuring_rerecord_is_idempotent(self):
        store = self._store()
        store.transition(0, DISPATCHED)
        store.transition(0, MEASURING)
        assert store.transition(0, MEASURING) == 1
        assert store.trial_state(0) == (MEASURING, 1)

    def test_illegal_transition_raises(self):
        store = self._store()
        with pytest.raises(FleetStateError, match="illegal"):
            store.transition(0, DONE)

    def test_unknown_state_raises(self):
        store = self._store()
        with pytest.raises(FleetStateError, match="unknown"):
            store.transition(0, "paused")

    def test_transition_without_state_row_raises(self):
        store = ResultsStore()
        with pytest.raises(FleetStateError, match="no state row"):
            store.transition(9, DISPATCHED)

    def test_terminal_states_refuse_every_exit(self):
        for terminal in TERMINAL_STATES:
            store = self._store()
            store.transition(0, DISPATCHED)
            store.transition(0, MEASURING if terminal == DONE
                             else terminal)
            if terminal == DONE:
                store.transition(0, DONE)
            with pytest.raises(FleetStateError, match="illegal"):
                store.transition(0, PENDING)

    def test_missing_trial_reads_pending(self):
        store = self._store()
        assert store.trial_state(99) == (PENDING, 0)


class TestFromStore:
    def test_store_without_spec_is_rejected(self):
        store = ResultsStore()
        with pytest.raises(FleetResumeError, match="no persisted"):
            FleetDispatcher.from_store(store)

    def test_missing_workdir_is_rejected(self, tmp_path):
        store = ResultsStore()
        gone = tmp_path / "gone"
        FleetDispatcher(_spec(), store=store, workdir=str(gone),
                        measure=False)
        # The workdir was persisted but never created on disk.
        with pytest.raises(FleetResumeError, match="missing"):
            FleetDispatcher.from_store(store)

    def test_conflicting_spec_is_rejected(self, tmp_path):
        store = ResultsStore()
        FleetDispatcher(_spec(), store=store, workdir=str(tmp_path),
                        measure=False)
        other = _spec(n_trials=5)
        with pytest.raises(FleetDispatchError, match="different"):
            FleetDispatcher(other, store=store, workdir=str(tmp_path),
                            measure=False)
        with pytest.raises(FleetResumeError, match="persisted spec"):
            FleetDispatcher(other, store=store, workdir=str(tmp_path),
                            measure=False, resume=True)


def _kill_plan(at_tick):
    return FleetFaultPlan(
        [FleetFaultEvent(at_tick=at_tick, kind=DISPATCHER_KILL)])


class TestKillAndResume:
    def test_resume_finishes_the_fleet_bit_identically(self, tmp_path):
        clean_store = ResultsStore()
        FleetDispatcher(_spec(), store=clean_store,
                        measure=False).run()

        store = ResultsStore()
        dispatcher = FleetDispatcher(
            _spec(), store=store, workdir=str(tmp_path), measure=False,
            chaos=ChaosController(_kill_plan(2)))
        with pytest.raises(DispatcherKilled):
            dispatcher.run()
        done_at_death = store.state_counts().get(DONE, 0)
        assert 0 < done_at_death < 4

        telemetry = SessionTelemetry()
        summary = FleetDispatcher.from_store(
            store, measure=False, telemetry=telemetry).run()
        assert summary.resumed
        assert summary.completed == 4
        assert summary.requeued == 4 - done_at_death
        clean = [tuple(r) for r in clean_store.trial_rows()]
        resumed = [tuple(r) for r in store.trial_rows()]
        assert clean == resumed   # attempts included: no retries here

        resume_events = [e for e in telemetry.session.events
                         if e["kind"] == "fleet_resume"]
        assert len(resume_events) == 1
        assert resume_events[0]["done"] == done_at_death
        assert resume_events[0]["requeued"] == 4 - done_at_death
        dispatches = [e for e in telemetry.session.events
                      if e["kind"] == "trial_dispatch"]
        assert len(dispatches) == 4 - done_at_death

    def test_resume_of_a_finished_fleet_redoes_nothing(self, tmp_path):
        store = ResultsStore()
        FleetDispatcher(_spec(), store=store, workdir=str(tmp_path),
                        measure=False).run()
        rows = [tuple(r) for r in store.trial_rows()]

        telemetry = SessionTelemetry()
        summary = FleetDispatcher.from_store(
            store, measure=False, telemetry=telemetry).run()
        assert summary.resumed
        assert summary.completed == 4
        assert summary.requeued == 0 and summary.reconciled == 0
        assert [tuple(r) for r in store.trial_rows()] == rows
        kinds = [e["kind"] for e in telemetry.session.events]
        assert "trial_dispatch" not in kinds
        assert kinds.count("fleet_resume") == 1

    def test_dispatched_trial_recovers_from_result_artifact(
            self, tmp_path):
        # First pass populates the workdir with finished artifacts.
        spec = _spec()
        seed_store = ResultsStore()
        FleetDispatcher(spec, store=seed_store, workdir=str(tmp_path),
                        measure=False).run()
        expected = [tuple(r) for r in seed_store.trial_rows()]

        # Fresh store: trial 2 was dispatched, then the dispatcher
        # died before processing the completion the worker left.
        store = ResultsStore()
        FleetDispatcher(spec, store=store, workdir=str(tmp_path),
                        measure=False)
        store.transition(2, DISPATCHED)

        summary = FleetDispatcher.from_store(store,
                                             measure=False).run()
        assert summary.reconciled == 1
        assert summary.requeued == 3
        assert summary.completed == 4
        assert store.attempts(2) == 1
        assert [tuple(r) for r in store.trial_rows()] == expected

    def test_corrupt_result_artifact_requeues_the_trial(
            self, tmp_path):
        spec = _spec()
        seed_store = ResultsStore()
        FleetDispatcher(spec, store=seed_store, workdir=str(tmp_path),
                        measure=False).run()
        expected = [tuple(r) for r in seed_store.trial_rows()]

        result_path = tmp_path / "trial-0002" / RESULT_FILE
        with open(result_path, "r+b") as fh:
            fh.truncate(8)

        store = ResultsStore()
        FleetDispatcher(spec, store=store, workdir=str(tmp_path),
                        measure=False)
        store.transition(2, DISPATCHED)

        summary = FleetDispatcher.from_store(store,
                                             measure=False).run()
        assert summary.quarantined_artifacts >= 1
        assert summary.reconciled == 0
        assert summary.requeued == 4
        assert summary.completed == 4
        assert os.path.exists(str(result_path) + ".quarantined")
        # The re-run lands the same result the artifact would have;
        # only the attempt counter records the extra dispatch.
        rows = [tuple(r) for r in store.trial_rows()]
        assert [r[:7] + r[8:] for r in rows] == \
            [r[:7] + r[8:] for r in expected]
        assert store.attempts(2) == 2

    def test_measuring_trial_is_remeasured_only(self, tmp_path):
        spec = _spec()
        store = ResultsStore()
        FleetDispatcher(spec, store=store, workdir=str(tmp_path),
                        measure=False).run()
        rows = [tuple(r) for r in store.trial_rows()]

        # Simulate a dispatcher that died between landing the result
        # row and finishing measurement: re-record trial 1's row (the
        # record API force-syncs the state row back to MEASURING).
        from repro.fuzzer import run_campaign
        trial = spec.expand()[1]
        store.record_trial(trial, run_campaign(trial.config),
                           attempts=1)
        assert store.trial_state(1)[0] == MEASURING

        summary = FleetDispatcher.from_store(store,
                                             measure=False).run()
        assert summary.remeasured == 1
        assert summary.requeued == 0
        assert summary.completed == 4
        assert store.trial_state(1)[0] == DONE
        assert [tuple(r) for r in store.trial_rows()] == rows

    def test_lost_trials_stay_lost_on_resume(self, tmp_path):
        spec = _spec()
        store = ResultsStore()
        FleetDispatcher(spec, store=store, workdir=str(tmp_path),
                        measure=False).run()
        from repro.fleet.store import LOST as LOST_STATE
        trial = spec.expand()[3]
        store.record_lost(trial, attempts=2)
        assert store.trial_state(3)[0] == LOST_STATE

        summary = FleetDispatcher.from_store(store,
                                             measure=False).run()
        assert summary.lost == [3]
        assert summary.completed == 3
        assert store.trial_state(3)[0] == LOST_STATE
