"""render_report: structure, statistics presence, determinism."""

from repro.fleet import (FleetDispatcher, FleetSpec, ResultsStore,
                         render_report)
from repro.fleet.report import ALPHA, REPORT_METRICS


def _store(n_trials=3):
    spec = FleetSpec(fuzzers=("afl", "bigmap"), benchmarks=("zlib",),
                     map_sizes=(1 << 16,), n_trials=n_trials,
                     scale=0.05, seed_scale=0.02, virtual_seconds=2.0,
                     max_real_execs=1200)
    store = ResultsStore()
    FleetDispatcher(spec, store=store, measure=False).run()
    return spec, store


class TestReport:
    def test_report_carries_all_statistics(self):
        spec, store = _store()
        report = render_report(store, spec)
        assert "Mann-Whitney" in report
        for metric in REPORT_METRICS:
            assert f"metric: {metric}" in report
        for fuzzer in spec.fuzzers:
            assert fuzzer in report
        assert "afl vs bigmap:" in report
        assert "U=" in report and "p=" in report and "A12=" in report
        assert "95% CI" in report
        assert f"p < {ALPHA}" in report
        assert "n=3" in report

    def test_report_is_deterministic(self):
        spec, store = _store()
        assert render_report(store, spec) == render_report(store, spec)

    def test_report_without_spec_sorts_fuzzers(self):
        _, store = _store()
        report = render_report(store)
        assert "afl vs bigmap:" in report

    def test_lost_trials_are_listed(self):
        spec, store = _store()
        trials = spec.expand()
        store.record_lost(trials[5], attempts=4)
        report = render_report(store, spec)
        assert "lost trials" in report and "5" in report

    def test_empty_cell_renders_gracefully(self):
        spec, store = _store()
        # Drop one fuzzer's rows entirely by filtering into a new store.
        fresh = ResultsStore()
        # No rows at all: header-only report, no crash.
        report = render_report(fresh, spec)
        assert "Fleet comparison" in report
