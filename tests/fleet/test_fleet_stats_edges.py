"""Degenerate statistics inputs, pinned to golden values.

Crash-recovered fleets legitimately produce tiny or constant samples
(every trial but one lost, all replicas tied); the report must render
defined numbers for them, not NaNs or exceptions. These pins define
the edge-case contract: zero-variance and single-trial inputs are
*data*, an empty bootstrap resample set is an *error*.
"""

import pytest

from repro.fleet.stats import (bootstrap_ci, bootstrap_diff_ci,
                               mann_whitney_u, vargha_delaney_a12)


class TestMannWhitneyDegenerate:
    def test_all_ties_is_no_evidence(self):
        # Zero variance in both groups: the tie-corrected normal
        # approximation divides 0 by 0 conceptually; defined as p=1.
        result = mann_whitney_u([5.0] * 4, [5.0] * 4)
        assert result.u1 == 8.0
        assert result.u2 == 8.0
        assert result.p_value == 1.0

    def test_single_trial_each_is_no_evidence(self):
        # One observation per side can never reach significance.
        result = mann_whitney_u([3.0], [5.0])
        assert result.u1 == 0.0
        assert result.u2 == 1.0
        assert result.p_value == 1.0

    def test_all_ties_unbalanced_groups(self):
        result = mann_whitney_u([2.0] * 3, [2.0] * 4)
        assert result.u1 == 6.0
        assert result.u2 == 6.0
        assert result.p_value == 1.0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestA12Degenerate:
    def test_all_ties_is_half(self):
        assert vargha_delaney_a12([5.0] * 4, [5.0] * 4) == 0.5

    def test_single_trials_are_zero_or_one(self):
        assert vargha_delaney_a12([3.0], [5.0]) == 0.0
        assert vargha_delaney_a12([5.0], [3.0]) == 1.0


class TestBootstrapDegenerate:
    def test_single_value_collapses_to_point_interval(self):
        # Every resample of a one-element sample is that element.
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_zero_variance_collapses_to_point_interval(self):
        assert bootstrap_ci([5.0] * 4, seed=0) == (5.0, 5.0)

    def test_zero_variance_diff_is_zero_width_at_zero(self):
        assert bootstrap_diff_ci([5.0] * 3, [5.0] * 3, seed=0) == \
            (0.0, 0.0)

    def test_empty_resample_set_is_an_error(self):
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_ci([1.0, 2.0], n_resamples=0)
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_diff_ci([1.0], [2.0], n_resamples=0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
