"""Unit tests for the repro-fuzz CLI."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_size


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("64k", 1 << 16), ("2M", 1 << 21), ("8m", 1 << 23),
        ("65536", 1 << 16), ("1g", 1 << 30),
    ])
    def test_accepts(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["0", "100", "abc", "-64k"])
    def test_rejects(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_size(text)


class TestCli:
    def test_list_benchmarks(self, capsys):
        assert main(["--list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "zlib" in out and "instcombine" in out

    def test_unknown_benchmark_errors(self):
        with pytest.raises(SystemExit):
            main(["doom"])

    def test_single_campaign(self, capsys):
        assert main(["zlib", "--budget", "0.2", "--max-execs", "300",
                     "--scale", "0.5", "--seed-scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "executions" in out
        assert "BigMap used_key" in out

    def test_afl_campaign_has_no_used_key(self, capsys):
        assert main(["zlib", "--fuzzer", "afl", "--budget", "0.2",
                     "--max-execs", "300", "--scale", "0.5",
                     "--seed-scale", "0.2"]) == 0
        assert "used_key" not in capsys.readouterr().out

    def test_parallel_session(self, capsys):
        assert main(["zlib", "--instances", "2", "--budget", "0.3",
                     "--max-execs", "300", "--scale", "0.5",
                     "--seed-scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "total executions" in out
        assert "contention slowdown" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["zlib"])
        assert args.fuzzer == "bigmap"
        assert args.map_size == 1 << 16
        assert args.metric == "afl-edge"
