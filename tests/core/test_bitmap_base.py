"""Unit/property tests for shared bitmap helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (COUNTER_SATURATE, COUNTER_WRAP, aggregate_keys,
                        apply_counts)
from repro.core.errors import TraceShapeError


class TestAggregateKeys:
    def test_combines_duplicates(self):
        keys = np.array([5, 2, 5, 2, 5], dtype=np.int64)
        counts = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        unique, summed = aggregate_keys(keys, counts)
        assert unique.tolist() == [2, 5]
        assert summed.tolist() == [6, 9]

    def test_empty(self):
        unique, summed = aggregate_keys(np.empty(0, dtype=np.int64),
                                        np.empty(0, dtype=np.int64))
        assert unique.size == 0 and summed.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(TraceShapeError):
            aggregate_keys(np.array([1, 2]), np.array([1]))

    def test_rejects_2d(self):
        with pytest.raises(TraceShapeError):
            aggregate_keys(np.zeros((2, 2)), np.zeros((2, 2)))

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(1, 100)),
                    max_size=60))
    def test_total_count_preserved(self, pairs):
        keys = np.array([k for k, _ in pairs], dtype=np.int64)
        counts = np.array([c for _, c in pairs], dtype=np.int64)
        _, summed = aggregate_keys(keys, counts)
        assert summed.sum() == counts.sum()

    @given(st.lists(st.integers(0, 63), max_size=60))
    def test_unique_sorted(self, raw):
        keys = np.array(raw, dtype=np.int64)
        unique, _ = aggregate_keys(keys, np.ones_like(keys))
        assert (np.diff(unique) > 0).all()


class TestApplyCounts:
    def test_saturate_is_sticky(self):
        store = np.array([250], dtype=np.uint8)
        apply_counts(store, np.array([0]), np.array([10]),
                     COUNTER_SATURATE)
        assert store[0] == 255
        apply_counts(store, np.array([0]), np.array([10]),
                     COUNTER_SATURATE)
        assert store[0] == 255

    def test_wrap_matches_modular_arithmetic(self):
        store = np.array([250], dtype=np.uint8)
        apply_counts(store, np.array([0]), np.array([10]), COUNTER_WRAP)
        assert store[0] == (250 + 10) % 256

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            apply_counts(np.zeros(1, dtype=np.uint8), np.array([0]),
                         np.array([1]), "overflow")

    @given(st.integers(0, 255), st.integers(0, 1000))
    def test_wrap_equals_per_increment_wrap(self, start, add):
        """Summed-then-wrapped equals incrementing one at a time."""
        store = np.array([start], dtype=np.uint8)
        apply_counts(store, np.array([0]), np.array([add]), COUNTER_WRAP)
        expected = start
        for _ in range(add):
            expected = (expected + 1) & 0xFF
        assert store[0] == expected

    @given(st.integers(0, 255), st.integers(0, 1000))
    def test_saturate_equals_per_increment_saturate(self, start, add):
        store = np.array([start], dtype=np.uint8)
        apply_counts(store, np.array([0]), np.array([add]),
                     COUNTER_SATURATE)
        expected = start
        for _ in range(add):
            expected = min(expected + 1, 255)
        assert store[0] == expected
