"""Unit tests for bitmap hashing helpers."""

import zlib

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashing import (crc32_full, crc32_trimmed,
                                last_nonzero_index)


class TestLastNonzero:
    def test_empty(self):
        assert last_nonzero_index(np.zeros(8, dtype=np.uint8)) == -1

    def test_finds_last(self):
        arr = np.array([0, 3, 0, 7, 0], dtype=np.uint8)
        assert last_nonzero_index(arr) == 3

    def test_search_limit(self):
        arr = np.array([0, 3, 0, 7, 0], dtype=np.uint8)
        assert last_nonzero_index(arr, search_limit=3) == 1
        assert last_nonzero_index(arr, search_limit=1) == -1


class TestCrc32Trimmed:
    def test_matches_manual_crc(self):
        arr = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert crc32_trimmed(arr) == zlib.crc32(bytes([1, 1]))

    def test_paper_discrepancy_example(self):
        """§IV-D: crc32({1,1}) != crc32({1,1,0}) — trimming fixes it."""
        p1 = np.array([1, 1, 0, 0], dtype=np.uint8)
        p3 = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert crc32_full(np.array([1, 1], dtype=np.uint8)) != \
            crc32_full(np.array([1, 1, 0], dtype=np.uint8))
        assert crc32_trimmed(p1, 2) == crc32_trimmed(p3, 3)

    def test_all_zero(self):
        assert crc32_trimmed(np.zeros(16, dtype=np.uint8)) == \
            zlib.crc32(b"")

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=64),
           st.integers(0, 32))
    def test_zero_padding_invariant(self, values, padding):
        """Appending zeros never changes the trimmed hash."""
        base = np.array(values, dtype=np.uint8)
        padded = np.concatenate([base,
                                 np.zeros(padding, dtype=np.uint8)])
        assert crc32_trimmed(base) == crc32_trimmed(padded)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=64))
    def test_trimmed_equals_full_up_to_last_nonzero(self, values):
        arr = np.array(values, dtype=np.uint8)
        last = last_nonzero_index(arr)
        assert crc32_trimmed(arr) == crc32_full(arr[:last + 1])


class TestCrc32Full:
    def test_is_plain_crc32(self):
        arr = np.array([9, 8, 7], dtype=np.uint8)
        assert crc32_full(arr) == zlib.crc32(bytes([9, 8, 7]))

    def test_length_sensitive(self):
        a = np.array([1, 1], dtype=np.uint8)
        b = np.array([1, 1, 0], dtype=np.uint8)
        assert crc32_full(a) != crc32_full(b)
