"""The central functional claim: BigMap is a drop-in replacement.

For any sequence of key traces, AFL's flat bitmap and BigMap must make
*identical fitness decisions* — same compare level at every step, same
number of distinct discoveries over the campaign. (Their virgin maps
index different spaces — map keys vs condensed slots — but the
discovery structure must be isomorphic.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AflCoverage, BigMapCoverage, VirginMap

MAP = 1 << 10


def arr(values):
    return np.asarray(values, dtype=np.int64)


traces_strategy = st.lists(
    st.lists(st.tuples(st.integers(0, MAP - 1), st.integers(1, 300)),
             min_size=0, max_size=25),
    min_size=1, max_size=15)


@settings(max_examples=60, deadline=None)
@given(traces_strategy)
def test_identical_fitness_decisions(traces):
    afl, big = AflCoverage(MAP), BigMapCoverage(MAP)
    virgin_a, virgin_b = VirginMap(MAP), VirginMap(MAP)
    for trace in traces:
        afl.reset()
        big.reset()
        if trace:
            keys, counts = zip(*trace)
            afl.update(arr(keys), arr(counts))
            big.update(arr(keys), arr(counts))
        r_a = afl.classify_and_compare(virgin_a)
        r_b = big.classify_and_compare(virgin_b)
        assert (r_a.level, r_a.new_edges, r_a.new_buckets) == \
            (r_b.level, r_b.new_edges, r_b.new_buckets), \
            "AFL and BigMap disagreed on a fitness decision"
    assert virgin_a.count_discovered() == virgin_b.count_discovered()


@settings(max_examples=60, deadline=None)
@given(traces_strategy)
def test_identical_stored_counts(traces):
    """After every update, per-key counts must agree exactly."""
    afl, big = AflCoverage(MAP), BigMapCoverage(MAP)
    seen = set()
    for trace in traces:
        afl.reset()
        big.reset()
        if trace:
            keys, counts = zip(*trace)
            afl.update(arr(keys), arr(counts))
            big.update(arr(keys), arr(counts))
            seen.update(keys)
        for key in seen:
            assert afl.count_for_key(key) == big.count_for_key(key)


@settings(max_examples=40, deadline=None)
@given(traces_strategy)
def test_hash_equivalence_classes_match(traces):
    """Two executions hash equal under AFL iff they hash equal under
    BigMap (the hash functions differ, but the induced partition of
    executions must be the same)."""
    afl, big = AflCoverage(MAP), BigMapCoverage(MAP)
    afl_hashes, big_hashes = [], []
    for trace in traces:
        afl.reset()
        big.reset()
        if trace:
            keys, counts = zip(*trace)
            afl.update(arr(keys), arr(counts))
            big.update(arr(keys), arr(counts))
        afl.classify()
        big.classify()
        afl_hashes.append(afl.hash())
        big_hashes.append(big.hash())
    for i in range(len(traces)):
        for j in range(i + 1, len(traces)):
            assert (afl_hashes[i] == afl_hashes[j]) == \
                (big_hashes[i] == big_hashes[j]), \
                f"hash partition mismatch between traces {i} and {j}"
