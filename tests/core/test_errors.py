"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.errors import (CalibrationError, CampaignConfigError,
                               KeyRangeError, MapFullError, MapSizeError,
                               ReproError, TraceShapeError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        MapSizeError, MapFullError, KeyRangeError, TraceShapeError,
        CalibrationError, CampaignConfigError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_such(self):
        """Callers using plain ``except ValueError`` still work for the
        validation errors."""
        for exc in (MapSizeError, KeyRangeError, TraceShapeError,
                    CalibrationError, CampaignConfigError):
            assert issubclass(exc, ValueError)

    def test_map_full_is_runtime_error(self):
        assert issubclass(MapFullError, RuntimeError)

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise KeyRangeError("x")
        with pytest.raises(ReproError):
            raise MapFullError("y")
