"""Unit tests for the AFL flat bitmap, incl. sparse/dense equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AflCoverage, COUNTER_WRAP, VirginMap
from repro.core.errors import KeyRangeError

MAP = 1 << 12


def arr(values):
    return np.asarray(values, dtype=np.int64)


class TestBasicSemantics:
    def test_update_accumulates(self):
        cov = AflCoverage(MAP)
        cov.update(arr([3, 3, 9]), arr([1, 2, 5]))
        assert cov.count_for_key(3) == 3
        assert cov.count_for_key(9) == 5

    def test_reset_zeroes(self):
        cov = AflCoverage(MAP)
        cov.update(arr([3]), arr([7]))
        cov.reset()
        assert cov.count_for_key(3) == 0
        assert cov.nonzero_locations().size == 0

    def test_update_returns_unique_count(self):
        cov = AflCoverage(MAP)
        assert cov.update(arr([1, 1, 2, 3]), arr([1, 1, 1, 1])) == 3
        assert cov.update(arr([]), arr([])) == 0

    def test_colliding_keys_alias(self):
        """Two 'edges' mapping to one key merge their counts — the
        collision ambiguity the paper studies."""
        cov = AflCoverage(MAP)
        cov.update(arr([42, 42]), arr([1, 1]))
        assert cov.count_for_key(42) == 2
        assert cov.nonzero_locations().tolist() == [42]

    def test_classify_in_place(self):
        cov = AflCoverage(MAP)
        cov.update(arr([5]), arr([100]))
        cov.classify()
        assert cov.count_for_key(5) == 64

    def test_compare_against_virgin(self):
        cov = AflCoverage(MAP)
        virgin = VirginMap(MAP)
        cov.update(arr([5]), arr([1]))
        assert cov.classify_and_compare(virgin).level == 2
        cov.reset()
        cov.update(arr([5]), arr([1]))
        assert cov.classify_and_compare(virgin).level == 0

    def test_wrap_mode(self):
        cov = AflCoverage(MAP, counter_mode=COUNTER_WRAP)
        cov.update(arr([5]), arr([257]))
        assert cov.count_for_key(5) == 1

    def test_key_range_checked(self):
        with pytest.raises(KeyRangeError):
            AflCoverage(MAP).update(arr([MAP + 1]), arr([1]))

    def test_active_bytes_is_map_size(self):
        assert AflCoverage(MAP).active_bytes() == MAP

    def test_hash_consistent_for_same_trace(self):
        cov = AflCoverage(MAP)
        cov.update(arr([1, 2]), arr([1, 1]))
        cov.classify()
        h1 = cov.hash()
        cov.reset()
        cov.update(arr([1, 2]), arr([1, 1]))
        cov.classify()
        assert cov.hash() == h1

    def test_hash_differs_for_different_traces(self):
        cov = AflCoverage(MAP)
        cov.update(arr([1]), arr([1]))
        cov.classify()
        h1 = cov.hash()
        cov.reset()
        cov.update(arr([2]), arr([1]))
        cov.classify()
        assert cov.hash() != h1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.lists(st.tuples(st.integers(0, MAP - 1),
                                   st.integers(1, 300)),
                         min_size=0, max_size=25),
                min_size=1, max_size=8))
def test_sparse_and_dense_host_ops_are_equivalent(traces):
    """The simulation fast path must be functionally invisible:
    byte-identical maps, identical compare outcomes, identical
    nonzero locations, across arbitrary execution sequences."""
    sparse = AflCoverage(MAP, sparse_host_ops=True)
    dense = AflCoverage(MAP, sparse_host_ops=False)
    virgin_s, virgin_d = VirginMap(MAP), VirginMap(MAP)
    for trace in traces:
        sparse.reset()
        dense.reset()
        if trace:
            keys, counts = zip(*trace)
            n_s = sparse.update(arr(keys), arr(counts))
            n_d = dense.update(arr(keys), arr(counts))
            assert n_s == n_d
        r_s = sparse.classify_and_compare(virgin_s)
        r_d = dense.classify_and_compare(virgin_d)
        assert (r_s.level, r_s.new_edges, r_s.new_buckets) == \
            (r_d.level, r_d.new_edges, r_d.new_buckets)
        assert np.array_equal(sparse.trace, dense.trace)
        assert np.array_equal(sparse.nonzero_locations(),
                              dense.nonzero_locations())
    assert np.array_equal(virgin_s.virgin, virgin_d.virgin)


def test_sparse_hash_identifies_paths():
    """The sparse hash is a different function from CRC32-of-full-map,
    but must still be a path identifier: equal iff maps equal."""
    cov = AflCoverage(MAP, sparse_host_ops=True)
    cov.update(arr([10, 20]), arr([1, 1]))
    cov.classify()
    h1 = cov.hash()
    cov.reset()
    cov.update(arr([10, 20]), arr([1, 1]))
    cov.classify()
    assert cov.hash() == h1
    cov.reset()
    cov.update(arr([10, 21]), arr([1, 1]))
    cov.classify()
    assert cov.hash() != h1
