"""Unit tests for virgin-map compare (has_new_bits semantics)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.classify import classify_counts
from repro.core.compare import (NEW_EDGE, NEW_HIT_COUNT, NO_NEW_COVERAGE,
                                VirginMap)
from repro.core.errors import MapSizeError

MAP = 256


def classified(pairs, size=MAP):
    trace = np.zeros(size, dtype=np.uint8)
    for idx, count in pairs:
        trace[idx] = count
    return classify_counts(trace)


class TestMergeLevels:
    def test_fresh_map_new_edge(self):
        virgin = VirginMap(MAP)
        result = virgin.merge(classified([(3, 1)]))
        assert result.level == NEW_EDGE
        assert result.new_edges == 1
        assert result.new_buckets == 0

    def test_same_trace_second_time_is_nothing(self):
        virgin = VirginMap(MAP)
        trace = classified([(3, 1), (7, 5)])
        assert virgin.merge(trace).level == NEW_EDGE
        assert virgin.merge(trace).level == NO_NEW_COVERAGE

    def test_new_bucket_on_known_edge(self):
        virgin = VirginMap(MAP)
        virgin.merge(classified([(3, 1)]))
        result = virgin.merge(classified([(3, 10)]))
        assert result.level == NEW_HIT_COUNT
        assert result.new_buckets == 1
        assert result.new_edges == 0

    def test_same_bucket_different_count_is_nothing(self):
        """Counts 4 and 7 share the [4-7] bucket (paper §II-A2)."""
        virgin = VirginMap(MAP)
        virgin.merge(classified([(3, 4)]))
        assert virgin.merge(classified([(3, 7)])).level == NO_NEW_COVERAGE

    def test_new_edge_wins_over_new_bucket(self):
        virgin = VirginMap(MAP)
        virgin.merge(classified([(3, 1)]))
        result = virgin.merge(classified([(3, 10), (9, 1)]))
        assert result.level == NEW_EDGE
        assert result.new_edges == 1
        assert result.new_buckets == 1

    def test_empty_trace(self):
        virgin = VirginMap(MAP)
        assert virgin.merge(np.zeros(MAP, dtype=np.uint8)).level == \
            NO_NEW_COVERAGE

    def test_limit_restricts_compare(self):
        virgin = VirginMap(MAP)
        trace = classified([(100, 1)])
        assert virgin.merge(trace, limit=50).level == NO_NEW_COVERAGE
        assert virgin.merge(trace, limit=101).level == NEW_EDGE


class TestWouldBeNew:
    def test_does_not_mutate(self):
        virgin = VirginMap(MAP)
        trace = classified([(5, 1)])
        assert virgin.would_be_new(trace) == NEW_EDGE
        assert virgin.count_discovered() == 0
        assert virgin.merge(trace).level == NEW_EDGE

    def test_levels_match_merge(self):
        virgin = VirginMap(MAP)
        virgin.merge(classified([(5, 1)]))
        assert virgin.would_be_new(classified([(5, 100)])) == \
            NEW_HIT_COUNT
        assert virgin.would_be_new(classified([(5, 1)])) == \
            NO_NEW_COVERAGE


class TestMergeSparse:
    @given(st.lists(st.tuples(st.integers(0, MAP - 1),
                              st.integers(1, 255)),
                    min_size=0, max_size=40),
           st.lists(st.tuples(st.integers(0, MAP - 1),
                              st.integers(1, 255)),
                    min_size=0, max_size=40))
    def test_equivalent_to_full_merge(self, first, second):
        """Sparse and full merges agree on any pair of traces."""
        dense, sparse = VirginMap(MAP), VirginMap(MAP)
        for pairs in (first, second):
            trace = classified(dict(pairs).items())
            indices = np.flatnonzero(trace)
            full = dense.merge(trace)
            spr = sparse.merge_sparse(indices, trace[indices])
            assert (full.level, full.new_edges, full.new_buckets) == \
                (spr.level, spr.new_edges, spr.new_buckets)
        assert np.array_equal(dense.virgin, sparse.virgin)

    def test_empty_indices(self):
        virgin = VirginMap(MAP)
        result = virgin.merge_sparse(np.empty(0, dtype=np.int64),
                                     np.empty(0, dtype=np.uint8))
        assert result.level == NO_NEW_COVERAGE


class TestDiscoveredAndMergeFrom:
    def test_count_discovered(self):
        virgin = VirginMap(MAP)
        assert virgin.count_discovered() == 0
        virgin.merge(classified([(1, 1), (2, 1)]))
        assert virgin.count_discovered() == 2

    def test_reset(self):
        virgin = VirginMap(MAP)
        virgin.merge(classified([(1, 1)]))
        virgin.reset()
        assert virgin.count_discovered() == 0

    def test_merge_from_unions_discoveries(self):
        a, b = VirginMap(MAP), VirginMap(MAP)
        a.merge(classified([(1, 1)]))
        b.merge(classified([(2, 1), (3, 1)]))
        newly = a.merge_from(b)
        assert newly == 2
        assert a.count_discovered() == 3

    def test_merge_from_size_mismatch(self):
        with pytest.raises(MapSizeError):
            VirginMap(MAP).merge_from(VirginMap(MAP * 2))

    def test_copy_is_independent(self):
        a = VirginMap(MAP)
        a.merge(classified([(1, 1)]))
        b = a.copy()
        b.merge(classified([(2, 1)]))
        assert a.count_discovered() == 1
        assert b.count_discovered() == 2

    def test_invalid_size(self):
        with pytest.raises(MapSizeError):
            VirginMap(0)


class TestMergeSparseDuplicates:
    def _dense_from_pairs(self, pairs, size=MAP):
        dense = np.zeros(size, dtype=np.uint8)
        for idx, val in pairs:
            dense[idx] |= val  # the dense map holds the union of buckets
        return dense

    def test_duplicate_indices_match_dense_merge(self):
        pairs = [(3, 0x01), (3, 0x08), (9, 0x02), (9, 0x02), (9, 0x20)]
        indices = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs], dtype=np.uint8)

        sparse_virgin, dense_virgin = VirginMap(MAP), VirginMap(MAP)
        sparse = sparse_virgin.merge_sparse(indices, values)
        dense = dense_virgin.merge(self._dense_from_pairs(pairs))

        assert (sparse.level, sparse.new_edges, sparse.new_buckets) == \
            (dense.level, dense.new_edges, dense.new_buckets)
        assert np.array_equal(sparse_virgin.virgin, dense_virgin.virgin)

    def test_duplicate_indices_on_partially_known_map(self):
        sparse_virgin, dense_virgin = VirginMap(MAP), VirginMap(MAP)
        for v in (sparse_virgin, dense_virgin):
            v.merge(classified([(3, 1), (7, 1)]))

        pairs = [(3, 0x01), (3, 0x02), (7, 0x01), (11, 0x04), (11, 0x04)]
        indices = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs], dtype=np.uint8)
        sparse = sparse_virgin.merge_sparse(indices, values)
        dense = dense_virgin.merge(self._dense_from_pairs(pairs))

        assert (sparse.level, sparse.new_edges, sparse.new_buckets) == \
            (dense.level, dense.new_edges, dense.new_buckets)
        assert np.array_equal(sparse_virgin.virgin, dense_virgin.virgin)

    @given(st.lists(st.tuples(st.integers(0, MAP - 1),
                              st.sampled_from([1, 2, 4, 8, 16, 32, 64,
                                               128])),
                    min_size=0, max_size=40))
    def test_merge_sparse_always_matches_dense(self, pairs):
        indices = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs], dtype=np.uint8)

        sparse_virgin, dense_virgin = VirginMap(MAP), VirginMap(MAP)
        sparse = sparse_virgin.merge_sparse(indices, values)
        dense = dense_virgin.merge(self._dense_from_pairs(pairs))

        assert (sparse.level, sparse.new_edges, sparse.new_buckets) == \
            (dense.level, dense.new_edges, dense.new_buckets)
        assert np.array_equal(sparse_virgin.virgin, dense_virgin.virgin)
