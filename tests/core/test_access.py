"""Unit tests for access-stream accounting."""

import numpy as np
import pytest

from repro.core import (AccessLog, AflCoverage, BigMapCoverage,
                        NullAccessLog, Op, Pattern, VirginMap)


def arr(values):
    return np.asarray(values, dtype=np.int64)


class TestAccessLog:
    def test_sweep_recorded(self):
        log = AccessLog(keep_records=True)
        log.sweep(Op.RESET, "coverage", 1024, write=True)
        (record,) = log.records
        assert record.op == Op.RESET
        assert record.pattern == Pattern.SEQUENTIAL
        assert record.bytes_touched == 1024
        assert record.write

    def test_zero_byte_sweep_ignored(self):
        log = AccessLog(keep_records=True)
        log.sweep(Op.RESET, "coverage", 0)
        assert not log.records

    def test_scatter_recorded(self):
        log = AccessLog(keep_records=True)
        log.scatter(Op.UPDATE, "index", 10, 4096, element_size=8)
        (record,) = log.records
        assert record.pattern == Pattern.SCATTERED
        assert record.n_accesses == 10
        assert record.bytes_touched == 80
        assert record.region_bytes == 4096

    def test_aggregation(self):
        log = AccessLog()
        log.sweep(Op.COMPARE, "coverage", 100)
        log.sweep(Op.COMPARE, "coverage", 100)
        per_op = log.stats.per_op()
        assert per_op[Op.COMPARE].calls == 2
        assert per_op[Op.COMPARE].bytes_touched == 200

    def test_clear(self):
        log = AccessLog(keep_records=True)
        log.sweep(Op.HASH, "coverage", 10)
        log.clear()
        assert not log.records
        assert log.stats.total_bytes() == 0

    def test_null_log_discards(self):
        log = NullAccessLog()
        log.sweep(Op.RESET, "coverage", 1024)
        assert log.stats.total_bytes() == 0


class TestMapAccounting:
    """The paper's Table I access patterns, verified on the real maps."""

    def test_afl_sweeps_full_map_regardless_of_usage(self):
        log = AccessLog()
        cov = AflCoverage(1 << 12, log=log)
        virgin = VirginMap(1 << 12)
        cov.update(arr([1]), arr([1]))
        cov.reset()
        cov.classify()
        cov.compare(virgin)
        per_op = log.stats.per_op()
        assert per_op[Op.RESET].bytes_touched == 1 << 12
        assert per_op[Op.CLASSIFY].bytes_touched == 1 << 12
        assert per_op[Op.COMPARE].bytes_touched == 2 * (1 << 12)

    def test_bigmap_sweeps_only_used_region(self):
        log = AccessLog()
        cov = BigMapCoverage(1 << 12, log=log)
        virgin = VirginMap(1 << 12)
        cov.update(arr([1, 500, 900]), arr([1, 1, 1]))
        log.clear()
        cov.reset()
        cov.classify()
        cov.compare(virgin)
        per_op = log.stats.per_op()
        assert per_op[Op.RESET].bytes_touched == 3
        assert per_op[Op.CLASSIFY].bytes_touched == 3
        assert per_op[Op.COMPARE].bytes_touched == 6

    def test_bigmap_index_touched_only_during_update(self):
        """Paper §IV-B: the index bitmap is not accessed at any other
        phase, including reset."""
        log = AccessLog(keep_records=True)
        cov = BigMapCoverage(1 << 12, log=log)
        virgin = VirginMap(1 << 12)
        cov.update(arr([7]), arr([1]))
        log.clear()
        cov.reset()
        cov.classify()
        cov.compare(virgin)
        cov.hash()
        index_records = [r for r in log.records if r.array == "index"]
        assert not index_records

    def test_bigmap_init_is_the_only_full_map_touch(self):
        log = AccessLog(keep_records=True)
        cov = BigMapCoverage(1 << 12, log=log)
        init_bytes = [r.bytes_touched for r in log.records
                      if r.op == Op.INIT]
        assert sum(init_bytes) == (1 << 12) * 8 + (1 << 12)
        log.clear()
        cov.update(arr([5]), arr([1]))
        cov.reset()
        for record in log.records:
            assert record.op != Op.INIT

    def test_nonzero_region_hash_accounting(self):
        log = AccessLog(keep_records=True)
        cov = BigMapCoverage(1 << 12, log=log)
        cov.update(arr([3, 4, 5]), arr([1, 1, 1]))
        cov.reset()
        cov.update(arr([3]), arr([1]))  # only slot 0 nonzero
        log.clear()
        cov.hash()
        (record,) = [r for r in log.records if r.op == Op.HASH]
        assert record.bytes_touched == 1  # up to last nonzero, not used

    def test_non_temporal_flag_propagates(self):
        log = AccessLog(keep_records=True)
        cov = AflCoverage(1 << 12, log=log, non_temporal_reset=True)
        cov.reset()
        (record,) = [r for r in log.records if r.op == Op.RESET]
        assert record.non_temporal
