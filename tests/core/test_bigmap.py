"""Unit and property tests for the BigMap two-level bitmap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BigMapCoverage, COUNTER_WRAP, MapFullError,
                        VirginMap)
from repro.core.errors import KeyRangeError, MapSizeError

MAP = 1 << 12


def arr(values):
    return np.asarray(values, dtype=np.int64)


class TestSlotAssignment:
    def test_slots_are_a_dense_prefix(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([100, 4000, 7]), arr([1, 1, 1]))
        assert cov.used_key == 3
        slots = sorted(cov.slot_for_key(k) for k in (100, 4000, 7))
        assert slots == [0, 1, 2]

    def test_slot_is_stable_across_resets_and_executions(self):
        """Paper §IV-B: the same edge points to the same location for
        all test cases, because reset never touches the index."""
        cov = BigMapCoverage(MAP)
        cov.update(arr([9, 50]), arr([1, 1]))
        slot_9 = cov.slot_for_key(9)
        for _ in range(5):
            cov.reset()
            cov.update(arr([9, 200 + _]), arr([2, 1]))
            assert cov.slot_for_key(9) == slot_9

    def test_unknown_key_has_no_slot(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([5]), arr([1]))
        assert cov.slot_for_key(6) == BigMapCoverage.UNASSIGNED
        assert cov.count_for_key(6) == 0

    def test_duplicate_keys_in_one_trace_share_a_slot(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([5, 5, 5]), arr([1, 2, 3]))
        assert cov.used_key == 1
        assert cov.count_for_key(5) == 6

    def test_used_key_monotone(self):
        cov = BigMapCoverage(MAP)
        previous = 0
        rng = np.random.default_rng(0)
        for _ in range(20):
            keys = rng.integers(0, MAP, size=30)
            cov.reset()
            cov.update(keys, np.ones(30, dtype=np.int64))
            assert cov.used_key >= previous
            previous = cov.used_key

    def test_completely_filled_map_still_works(self):
        """With an index as large as the map, every key fits by
        construction (used_key can never exceed the distinct keys,
        which are bounded by the map size); filling all slots must
        leave the structure consistent."""
        cov = BigMapCoverage(8)
        cov.update(arr([0, 1, 2, 3]), np.ones(4, dtype=np.int64))
        cov.reset()
        cov.update(arr([4, 5, 6, 7]), np.ones(4, dtype=np.int64))
        assert cov.used_key == 8
        cov.check_invariants()
        cov.reset()
        cov.update(arr(range(8)), np.ones(8, dtype=np.int64))
        assert cov.used_key == 8


class TestOperations:
    def test_reset_clears_only_counts(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([3, 9]), arr([1, 4]))
        cov.reset()
        assert cov.count_for_key(3) == 0
        assert cov.used_key == 2
        assert cov.slot_for_key(9) != BigMapCoverage.UNASSIGNED

    def test_classify_buckets_used_region(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([1, 2, 3]), arr([1, 5, 200]))
        cov.classify()
        assert cov.count_for_key(1) == 1
        assert cov.count_for_key(2) == 8
        assert cov.count_for_key(3) == 128

    def test_compare_levels(self):
        cov = BigMapCoverage(MAP)
        virgin = VirginMap(MAP)
        cov.update(arr([7]), arr([1]))
        assert cov.classify_and_compare(virgin).level == 2
        cov.reset()
        cov.update(arr([7]), arr([1]))
        assert cov.classify_and_compare(virgin).level == 0
        cov.reset()
        cov.update(arr([7]), arr([40]))
        assert cov.classify_and_compare(virgin).level == 1

    def test_counts_saturate_by_default(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([5]), arr([300]))
        assert cov.count_for_key(5) == 255

    def test_counts_wrap_in_wrap_mode(self):
        cov = BigMapCoverage(MAP, counter_mode=COUNTER_WRAP)
        cov.update(arr([5]), arr([256]))
        assert cov.count_for_key(5) == 0

    def test_key_validation(self):
        cov = BigMapCoverage(MAP)
        with pytest.raises(KeyRangeError):
            cov.update(arr([MAP]), arr([1]))
        with pytest.raises(KeyRangeError):
            cov.update(arr([-1]), arr([1]))

    def test_map_size_must_be_power_of_two(self):
        with pytest.raises(MapSizeError):
            BigMapCoverage(1000)

    def test_active_bytes_tracks_used_key(self):
        cov = BigMapCoverage(MAP)
        assert cov.active_bytes() == 0
        cov.update(arr([1, 2]), arr([1, 1]))
        assert cov.active_bytes() == 2


class TestHashPathIdentity:
    def test_paper_section_4d_example(self):
        """The P1/P2/P3 example: same path must hash equal even after
        used_key grew in between (hash up to last non-zero, not
        used_key)."""
        cov = BigMapCoverage(MAP)
        # P1: A->B->C (keys 10, 20)
        cov.reset()
        cov.update(arr([10, 20]), arr([1, 1]))
        cov.classify()
        h1 = cov.hash()
        # P2: A->B->C->D extends used_key to 3.
        cov.reset()
        cov.update(arr([10, 20, 30]), arr([1, 1, 1]))
        cov.classify()
        assert cov.used_key == 3
        # P3: A->B->C again.
        cov.reset()
        cov.update(arr([10, 20]), arr([1, 1]))
        cov.classify()
        assert cov.hash() == h1

    def test_different_paths_hash_differently(self):
        cov = BigMapCoverage(MAP)
        cov.update(arr([10, 20]), arr([1, 1]))
        cov.classify()
        h1 = cov.hash()
        cov.reset()
        cov.update(arr([10]), arr([1]))
        cov.classify()
        assert cov.hash() != h1

    def test_empty_map_hash_is_stable(self):
        cov = BigMapCoverage(MAP)
        assert cov.hash() == BigMapCoverage(MAP).hash()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.tuples(st.integers(0, MAP - 1),
                                   st.integers(1, 300)),
                         min_size=0, max_size=30),
                min_size=1, max_size=12))
def test_invariants_hold_under_arbitrary_traces(traces):
    """Property: structural invariants survive any update sequence."""
    cov = BigMapCoverage(MAP)
    for trace in traces:
        cov.reset()
        if trace:
            keys, counts = zip(*trace)
            cov.update(arr(keys), arr(counts))
        cov.classify()
        cov.check_invariants()
    distinct = len({k for trace in traces for k, _ in trace})
    assert cov.used_key == distinct


class TestHashSingleScan:
    def test_hash_scans_the_condensed_region_once(self, monkeypatch):
        """The last-nonzero scan feeds both the access log and the CRC
        trim; it must run exactly once per hash() call."""
        import repro.core.bigmap as bigmap_mod
        import repro.core.hashing as hashing_mod
        from repro.core.hashing import last_nonzero_index

        calls = []

        def counting(bitmap, search_limit=None):
            calls.append(1)
            return last_nonzero_index(bitmap, search_limit)

        monkeypatch.setattr(bigmap_mod, "last_nonzero_index", counting)
        monkeypatch.setattr(hashing_mod, "last_nonzero_index", counting)

        cov = BigMapCoverage(MAP)
        cov.update(arr([5, 900, 33]), arr([1, 2, 3]))
        cov.classify()
        digest = cov.hash()
        assert len(calls) == 1

        from repro.core.hashing import crc32_trimmed
        assert digest == crc32_trimmed(cov.cov, cov.used_key)

    def test_hash_of_empty_map_single_scan(self, monkeypatch):
        import repro.core.bigmap as bigmap_mod
        import repro.core.hashing as hashing_mod
        from repro.core.hashing import last_nonzero_index

        calls = []

        def counting(bitmap, search_limit=None):
            calls.append(1)
            return last_nonzero_index(bitmap, search_limit)

        monkeypatch.setattr(bigmap_mod, "last_nonzero_index", counting)
        monkeypatch.setattr(hashing_mod, "last_nonzero_index", counting)

        cov = BigMapCoverage(MAP)
        digest = cov.hash()
        assert len(calls) == 1
        import zlib
        assert digest == zlib.crc32(b"")
