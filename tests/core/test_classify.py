"""Unit tests for AFL hit-count bucketing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.classify import (BUCKET_VALUES, COUNT_CLASS_LOOKUP8,
                                 bucket_of, classify_counts, is_classified)


class TestBucketBoundaries:
    """The exact AFL bucket table from paper §II-A2."""

    @pytest.mark.parametrize("count,bucket", [
        (0, 0), (1, 1), (2, 2), (3, 4),
        (4, 8), (5, 8), (7, 8),
        (8, 16), (15, 16),
        (16, 32), (31, 32),
        (32, 64), (127, 64),
        (128, 128), (255, 128),
    ])
    def test_boundary(self, count, bucket):
        assert bucket_of(count) == bucket
        assert int(COUNT_CLASS_LOOKUP8[count]) == bucket

    def test_counts_above_255_saturate(self):
        assert bucket_of(256) == 128
        assert bucket_of(10**9) == 128

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            bucket_of(-1)

    def test_bucket_values_are_distinct_bits(self):
        nonzero = sorted(v for v in BUCKET_VALUES if v)
        assert nonzero == [1, 2, 4, 8, 16, 32, 64, 128]
        for v in nonzero:
            assert v & (v - 1) == 0, "each bucket must be a single bit"


class TestClassifyCounts:
    def test_classifies_into_new_array(self):
        counts = np.array([0, 1, 3, 9, 200], dtype=np.uint8)
        out = classify_counts(counts)
        assert out.tolist() == [0, 1, 4, 16, 128]
        assert counts.tolist() == [0, 1, 3, 9, 200], "input untouched"

    def test_classifies_in_place(self):
        counts = np.array([5, 40], dtype=np.uint8)
        result = classify_counts(counts, out=counts)
        assert result is counts
        assert counts.tolist() == [8, 64]

    def test_rejects_non_uint8(self):
        with pytest.raises(TypeError):
            classify_counts(np.array([1, 2], dtype=np.int32))

    def test_empty(self):
        assert classify_counts(np.empty(0, dtype=np.uint8)).size == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_constant_on_buckets(self, a, b):
        """classify is constant exactly on AFL's buckets. (It is *not*
        idempotent — count 3 maps to bit 4, whose raw value lies in the
        next bucket — which is fine because AFL classifies a trace
        exactly once per execution.)"""
        buckets = [(0, 0), (1, 1), (2, 2), (3, 3), (4, 7), (8, 15),
                   (16, 31), (32, 127), (128, 255)]

        def bucket_index(v):
            return next(i for i, (lo, hi) in enumerate(buckets)
                        if lo <= v <= hi)

        same_bucket = bucket_index(a) == bucket_index(b)
        assert (bucket_of(a) == bucket_of(b)) == same_bucket

    @given(st.lists(st.integers(0, 255), max_size=128))
    def test_output_only_bucket_values(self, values):
        arr = np.array(values, dtype=np.uint8)
        assert is_classified(classify_counts(arr))

    @given(st.integers(0, 254))
    def test_monotone(self, count):
        """Buckets never decrease as counts increase."""
        assert bucket_of(count + 1) >= bucket_of(count)

    @given(st.integers(1, 255))
    def test_nonzero_count_nonzero_bucket(self, count):
        assert bucket_of(count) > 0


class TestIsClassified:
    def test_accepts_classified(self):
        assert is_classified(np.array([0, 1, 2, 4, 8, 16, 32, 64, 128],
                                      dtype=np.uint8))

    def test_rejects_raw_counts(self):
        assert not is_classified(np.array([3], dtype=np.uint8))
