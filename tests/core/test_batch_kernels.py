"""Exactness tests for the batched coverage kernels.

``update_batch`` must aggregate each segment exactly like the scalar
``reset(); update(keys, counts)`` path, ``classified_counts`` must match
what ``classify()`` would store, and ``compare_batch`` must be a
conservative superset of the serial compare's ``interesting`` — with
equality whenever the virgin map is not mutated between traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (AflCoverage, BigMapCoverage, COUNTER_SATURATE,
                        COUNTER_WRAP, VirginMap, aggregate_keys,
                        aggregate_keys_batch, classified_counts)

MAP = 1 << 10


def make_batch(rng, n_traces, map_size=MAP, max_seg=30):
    segs = [rng.integers(0, map_size,
                         size=int(rng.integers(0, max_seg))).astype(
                             np.int64)
            for _ in range(n_traces)]
    counts = [rng.integers(1, 300, size=s.size).astype(np.int64)
              for s in segs]
    offsets = np.zeros(n_traces + 1, dtype=np.int64)
    np.cumsum([s.size for s in segs], out=offsets[1:])
    flat_keys = np.concatenate(segs) if segs else \
        np.empty(0, dtype=np.int64)
    flat_counts = np.concatenate(counts) if counts else \
        np.empty(0, dtype=np.int64)
    return segs, counts, flat_keys, flat_counts, offsets


class TestAggregateKeysBatch:
    def test_matches_scalar_per_segment(self):
        rng = np.random.default_rng(0)
        segs, counts, fk, fc, off = make_batch(rng, 20)
        u_keys, summed, u_off = aggregate_keys_batch(fk, fc, off, MAP)
        for i, (seg, cnt) in enumerate(zip(segs, counts)):
            ref_keys, ref_sum = aggregate_keys(seg, cnt)
            lo, hi = u_off[i], u_off[i + 1]
            assert np.array_equal(u_keys[lo:hi], ref_keys)
            assert np.array_equal(summed[lo:hi], ref_sum)

    def test_empty_batch(self):
        u_keys, summed, u_off = aggregate_keys_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.zeros(4, dtype=np.int64), MAP)
        assert u_keys.size == 0
        assert np.array_equal(u_off, np.zeros(4, dtype=np.int64))

    def test_duplicate_keys_across_segments_stay_separate(self):
        keys = np.array([5, 5, 5], dtype=np.int64)
        counts = np.array([1, 2, 4], dtype=np.int64)
        offsets = np.array([0, 2, 3], dtype=np.int64)
        u_keys, summed, u_off = aggregate_keys_batch(
            keys, counts, offsets, MAP)
        assert np.array_equal(u_keys, [5, 5])
        assert np.array_equal(summed, [3, 4])
        assert np.array_equal(u_off, [0, 1, 2])


class TestClassifiedCounts:
    @pytest.mark.parametrize("mode", [COUNTER_SATURATE, COUNTER_WRAP])
    @pytest.mark.parametrize("cls", [AflCoverage, BigMapCoverage])
    def test_matches_map_classify(self, mode, cls):
        rng = np.random.default_rng(1)
        cov = cls(MAP, counter_mode=mode)
        for trial in range(20):
            keys = rng.integers(0, MAP, size=25).astype(np.int64)
            counts = rng.integers(1, 600, size=25).astype(np.int64)
            unique, summed = aggregate_keys(keys, counts)
            cov.reset()
            cov.update(keys, counts)
            cov.classify()
            stored = np.array([cov.count_for_key(int(k))
                               for k in unique])
            assert np.array_equal(
                classified_counts(summed, mode), stored), \
                f"{cls.__name__} {mode} trial {trial}"


@pytest.mark.parametrize("cls", [AflCoverage, BigMapCoverage])
class TestCompareBatch:
    def _run_serial(self, cls, segs, counts, virgin):
        cov = cls(MAP)
        outcomes = []
        for seg, cnt in zip(segs, counts):
            cov.reset()
            cov.update(seg, cnt)
            outcomes.append(
                cov.classify_and_compare(virgin).interesting)
        return outcomes

    def test_flags_are_exact_on_frozen_virgin(self, cls):
        """Against a fixed virgin map the pre-filter is exact, not
        merely conservative: each trace sees the same virgin state the
        serial compare would."""
        rng = np.random.default_rng(2)
        # Pre-discover some coverage so virgin is partially cleared.
        warm = cls(MAP)
        virgin = VirginMap(MAP)
        for _ in range(5):
            warm.reset()
            warm.update(rng.integers(0, MAP, size=40).astype(np.int64),
                        rng.integers(1, 9, size=40).astype(np.int64))
            warm.classify_and_compare(virgin)

        cov = cls(MAP)
        # Give the batch map the same slot state for BigMap by warming
        # it with the same keys (slot layout affects nothing for AFL).
        if isinstance(cov, BigMapCoverage):
            cov.index[:] = warm.index
            cov.used_key = warm.used_key
            cov.cov = np.zeros_like(warm.cov)

        segs, counts, fk, fc, off = make_batch(rng, 30)
        update = cov.update_batch(fk, fc, off)
        flags = cov.compare_batch(update, virgin)

        for i, (seg, cnt) in enumerate(zip(segs, counts)):
            probe = virgin.copy()
            cov.reset()
            cov.update(seg, cnt)
            truth = cov.classify_and_compare(probe).interesting
            assert bool(flags[i]) == truth, f"trace {i}"

    def test_flags_superset_under_live_merging(self, cls):
        """Processing in order with merges between traces: a False
        flag must imply not-interesting at replay time."""
        rng = np.random.default_rng(3)
        virgin = VirginMap(MAP)
        cov = cls(MAP)
        segs, counts, fk, fc, off = make_batch(rng, 40, max_seg=12)
        update = cov.update_batch(fk, fc, off)
        flags = cov.compare_batch(update, virgin)
        for i, (seg, cnt) in enumerate(zip(segs, counts)):
            cov.reset()
            cov.update(seg, cnt)
            truth = cov.classify_and_compare(virgin).interesting
            if truth:
                assert bool(flags[i]), f"trace {i}: missed interesting"

    def test_n_unique_matches_scalar_update(self, cls):
        rng = np.random.default_rng(4)
        cov = cls(MAP)
        segs, counts, fk, fc, off = make_batch(rng, 15)
        update = cov.update_batch(fk, fc, off)
        for i, (seg, cnt) in enumerate(zip(segs, counts)):
            cov.reset()
            assert int(update.n_unique[i]) == cov.update(seg, cnt)


class TestCompareBatchProperty:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bigmap_never_misses(self, seed):
        rng = np.random.default_rng(seed)
        virgin = VirginMap(MAP)
        cov = BigMapCoverage(MAP)
        for round_no in range(3):
            segs, counts, fk, fc, off = make_batch(rng, 10, max_seg=8)
            update = cov.update_batch(fk, fc, off)
            flags = cov.compare_batch(update, virgin)
            for i, (seg, cnt) in enumerate(zip(segs, counts)):
                cov.reset()
                cov.update(seg, cnt)
                truth = cov.classify_and_compare(virgin).interesting
                if truth:
                    assert bool(flags[i])
