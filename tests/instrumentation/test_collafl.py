"""Unit tests for the CollAFL comparator instrumentation."""

import numpy as np
import pytest

from repro.instrumentation import (CollAflInstrumentation,
                                   build_instrumentation,
                                   required_map_size)
from repro.target import Executor, ProgramSpec, generate_program


@pytest.fixture(scope="module")
def program():
    return generate_program(ProgramSpec(
        name="collafl-test", n_core_edges=500, input_len=64, seed=31,
        static_edges=100_000))


class TestStaticAssignment:
    def test_collision_free_when_map_fits(self, program):
        inst = CollAflInstrumentation(program, 1 << 16,
                                      indirect_fraction=0.0)
        assert inst.fully_static is False  # 64k < 100k static edges
        inst_big = CollAflInstrumentation(program, 1 << 17,
                                          indirect_fraction=0.0)
        assert inst_big.fully_static
        assert inst_big.direct_collision_count() == 0
        assert inst_big.distinct_keys_possible() == program.n_edges

    def test_required_map_size_covers_static(self, program):
        size = required_map_size(program)
        assert size >= program.static_edges
        assert size & (size - 1) == 0

    def test_undersized_map_wraps_and_collides(self):
        tight = generate_program(ProgramSpec(
            name="tight", n_core_edges=600, seed=7, static_edges=600))
        inst = CollAflInstrumentation(tight, 1 << 9,  # 512 < 600 edges
                                      indirect_fraction=0.0)
        assert not inst.fully_static
        assert inst.direct_collision_count() > 0

    def test_indirect_edges_may_collide(self, program):
        inst = CollAflInstrumentation(program, 1 << 17, seed=3,
                                      indirect_fraction=0.5)
        assert inst.indirect_mask.sum() > 0
        # Direct edges still never collide with each other.
        direct = inst.edge_keys[~inst.indirect_mask]
        assert np.unique(direct).size == direct.size

    def test_keys_in_range(self, program):
        inst = CollAflInstrumentation(program, 1 << 17)
        assert inst.edge_keys.min() >= 0
        assert inst.edge_keys.max() < (1 << 17)

    def test_fraction_validated(self, program):
        with pytest.raises(ValueError):
            CollAflInstrumentation(program, 1 << 16,
                                   indirect_fraction=2.0)


class TestIntegration:
    def test_registered_in_factory(self, program):
        inst = build_instrumentation("collafl", program, 1 << 17)
        assert isinstance(inst, CollAflInstrumentation)

    def test_trace_mapping(self, program):
        from repro.target import generate_seed_corpus
        inst = CollAflInstrumentation(program, 1 << 17,
                                      indirect_fraction=0.0)
        seed = generate_seed_corpus(program, 1, seed=2)[0]
        result = Executor(program).execute(seed)
        keys, counts = inst.keys_for(
            result, np.frombuffer(seed, dtype=np.uint8))
        # Collision-free: every traversed edge keeps its own key.
        assert np.unique(keys).size == result.n_edges

    def test_campaign_with_collafl_metric(self, program):
        from repro.fuzzer import CampaignConfig, run_campaign
        from repro.target import BenchmarkConfig, BuiltBenchmark
        from repro.target import generate_seed_corpus
        built = BuiltBenchmark(
            config=None, program=program,
            seeds=generate_seed_corpus(program, 5, seed=1), scale=1.0)
        result = run_campaign(CampaignConfig(
            benchmark="zlib",  # anchor only; program comes from built
            fuzzer="bigmap", map_size=1 << 17, metric="collafl",
            virtual_seconds=0.2, max_real_execs=400), built=built)
        assert result.execs > 0
        assert result.discovered_locations > 0
