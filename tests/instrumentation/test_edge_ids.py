"""Unit tests for AFL edge hashing and trace-pc-guard IDs."""

import numpy as np
import pytest

from repro.instrumentation import (AflEdgeInstrumentation,
                                   TracePCGuardInstrumentation,
                                   afl_edge_keys, assign_block_ids)
from repro.target import Executor


class TestBlockIds:
    def test_uniform_range(self):
        ids = assign_block_ids(10_000, 1 << 16, seed=1)
        assert ids.min() >= 0 and ids.max() < (1 << 16)
        # Roughly uniform: mean near the middle.
        assert abs(ids.mean() - (1 << 15)) < (1 << 12)

    def test_deterministic_per_seed(self):
        assert np.array_equal(assign_block_ids(100, 1 << 16, 7),
                              assign_block_ids(100, 1 << 16, 7))
        assert not np.array_equal(assign_block_ids(100, 1 << 16, 7),
                                  assign_block_ids(100, 1 << 16, 8))


class TestAflEdgeKeys:
    def test_listing1_formula(self, tiny_program):
        """E_XY = (B_X >> 1) ^ B_Y, exactly (paper Listing 1)."""
        map_size = 1 << 16
        keys = afl_edge_keys(tiny_program, map_size, seed=3)
        blocks = assign_block_ids(tiny_program.n_blocks, map_size, seed=3)
        e = 5
        expected = (int(blocks[tiny_program.src_block[e]]) >> 1) ^ \
            int(blocks[tiny_program.dst_block[e]])
        assert int(keys[e]) == expected

    def test_keys_in_range_without_masking(self, tiny_program):
        for size in (1 << 12, 1 << 16, 1 << 21):
            keys = afl_edge_keys(tiny_program, size, seed=1)
            assert keys.min() >= 0 and keys.max() < size

    def test_direction_preserved(self):
        """E_XY != E_YX thanks to the shift (paper §II-A2) — check on
        the raw formula with explicit block ids."""
        bx, by = 100, 200
        exy = (bx >> 1) ^ by
        eyx = (by >> 1) ^ bx
        assert exy != eyx

    def test_collisions_shrink_with_map_size(self, tiny_program):
        small = afl_edge_keys(tiny_program, 1 << 8, seed=1)
        big = afl_edge_keys(tiny_program, 1 << 20, seed=1)
        assert np.unique(small).size <= np.unique(big).size

    def test_keys_for_maps_trace(self, tiny_program, tiny_seeds):
        inst = AflEdgeInstrumentation(tiny_program, 1 << 16, seed=2)
        result = Executor(tiny_program).execute(tiny_seeds[0])
        keys, counts = inst.keys_for(
            result, np.frombuffer(tiny_seeds[0], dtype=np.uint8))
        assert keys.shape == result.edges.shape
        assert counts is result.counts

    def test_distinct_keys_possible(self, tiny_program):
        inst = AflEdgeInstrumentation(tiny_program, 1 << 16, seed=2)
        assert 0 < inst.distinct_keys_possible() <= tiny_program.n_edges

    def test_invalid_map_size(self, tiny_program):
        with pytest.raises(ValueError):
            AflEdgeInstrumentation(tiny_program, 1000)


class TestTracePCGuard:
    def test_direct_edges_sequential(self, tiny_program):
        inst = TracePCGuardInstrumentation(tiny_program, 1 << 16,
                                           indirect_fraction=0.0)
        expected = np.arange(tiny_program.n_edges) % (1 << 16)
        assert np.array_equal(inst.edge_keys, expected)

    def test_no_collisions_when_map_large_enough(self, tiny_program):
        inst = TracePCGuardInstrumentation(tiny_program, 1 << 16,
                                           indirect_fraction=0.0)
        assert inst.distinct_keys_possible() == tiny_program.n_edges

    def test_indirect_edges_hashed(self, tiny_program):
        inst = TracePCGuardInstrumentation(tiny_program, 1 << 16,
                                           indirect_fraction=0.5)
        n_indirect = int(inst.indirect_mask.sum())
        assert n_indirect > 0
        direct = ~inst.indirect_mask
        assert np.array_equal(
            inst.edge_keys[direct],
            (np.arange(tiny_program.n_edges) % (1 << 16))[direct])

    def test_indirect_fraction_validated(self, tiny_program):
        with pytest.raises(ValueError):
            TracePCGuardInstrumentation(tiny_program, 1 << 16,
                                        indirect_fraction=1.5)
