"""Unit tests for the laf-intel transform."""

import numpy as np
import pytest

from repro.instrumentation import apply_lafintel
from repro.instrumentation.lafintel import DEFAULT_STATIC_EXPANSION
from repro.target import Executor, Guard, ProgramSpec, generate_program


@pytest.fixture(scope="module")
def magic_program():
    return generate_program(ProgramSpec(
        name="laf-test", n_core_edges=300, input_len=96, seed=21,
        magic_subtree_edges=120, magic_subtree_count=4,
        magic_leaf_edges=8, n_crash_sites=3, n_magic_crash_sites=4))


@pytest.fixture(scope="module")
def transformed(magic_program):
    return apply_lafintel(magic_program)


class TestStructure:
    def test_valid_program(self, transformed):
        transformed.validate()

    def test_no_multi_byte_compares_remain(self, transformed):
        assert not (transformed.kind ==
                    np.uint8(Guard.EQ_MULTI)).any()

    def test_expansion_matches_widths(self, magic_program, transformed):
        multi = magic_program.kind == np.uint8(Guard.EQ_MULTI)
        extra = int((magic_program.width[multi] - 1).sum())
        assert transformed.n_edges == magic_program.n_edges + extra

    def test_static_edges_inflated(self, magic_program, transformed):
        assert transformed.static_edges == \
            round(magic_program.static_edges * DEFAULT_STATIC_EXPANSION)

    def test_crash_sites_preserved(self, magic_program, transformed):
        assert transformed.n_crash_sites == magic_program.n_crash_sites

    def test_noop_without_multibyte_compares(self):
        plain = generate_program(ProgramSpec(
            name="plain", n_core_edges=100, seed=1))
        assert apply_lafintel(plain) is plain

    def test_discoverability_unlocked(self, magic_program, transformed):
        """The whole point: magic subtrees become practically
        discoverable once gates split into byte compares."""
        before = int(magic_program.practically_discoverable_mask().sum())
        after = int(transformed.practically_discoverable_mask().sum())
        assert after > before
        # Everything satisfiable should now be byte-discoverable.
        assert after == int(transformed.discoverable_mask().sum())


class TestSemanticEquivalence:
    """An input satisfies a magic gate iff it traverses the whole
    chain; coverage of non-magic edges must be preserved exactly."""

    def _surviving_edges(self, program, data):
        return set(Executor(program).execute(data).edges.tolist())

    def test_magic_satisfying_input_reaches_chain_end(self,
                                                      magic_program,
                                                      transformed):
        multi = np.flatnonzero(magic_program.kind ==
                               np.uint8(Guard.EQ_MULTI))
        # Build an input satisfying the first gate's magic directly.
        edge = int(multi[0])
        off = int(magic_program.off[edge])
        w = int(magic_program.width[edge])
        data = np.zeros(magic_program.input_len, dtype=np.uint8)
        data[off:off + w] = magic_program.magic[edge, :w]
        base_covers = edge in self._surviving_edges(
            magic_program, data.tobytes())
        # Reachability of the gate also needs its ancestors; if the
        # original program covers it, the transform must too (chain of
        # w edges all satisfied).
        if base_covers:
            trans_edges = Executor(transformed).execute(
                data.tobytes()).edges
            # The final chain edge for this gate exists and is covered.
            widths = np.where(
                magic_program.kind == np.uint8(Guard.EQ_MULTI),
                magic_program.width, 1).astype(np.int64)
            final_new = int(np.cumsum(widths)[edge] - 1)
            assert final_new in set(trans_edges.tolist())

    def test_partial_magic_covers_chain_prefix_only(self):
        """laf's gradual-progress property: matching k of w magic bytes
        covers exactly k chain edges."""
        from tests.target.test_executor import build_program
        base = build_program([
            {"kind": Guard.ALWAYS},
            {"kind": Guard.EQ_MULTI, "parent": 0, "off": 0, "width": 4,
             "magic": [10, 20, 30, 40]},
            {"kind": Guard.ALWAYS, "parent": 1},
        ], input_len=16)
        laf = apply_lafintel(base)
        ex = Executor(laf)
        assert ex.execute(bytes([10, 20, 99, 99])).n_edges == 1 + 2
        assert ex.execute(bytes([10, 20, 30, 99])).n_edges == 1 + 3
        assert ex.execute(bytes([10, 20, 30, 40])).n_edges == 1 + 4 + 1
        assert ex.execute(bytes([99, 0, 0, 0])).n_edges == 1

    def test_loop_and_crash_on_final_chain_edge(self):
        from tests.target.test_executor import build_program
        base = build_program([
            {"kind": Guard.EQ_MULTI, "off": 0, "width": 2,
             "magic": [1, 2], "loop_off": 3, "loop_cap": 4, "crash": 9},
        ], input_len=8)
        laf = apply_lafintel(base)
        ex = Executor(laf)
        r = ex.execute(bytes([1, 2, 0, 7]))
        assert r.crash is not None and r.crash.site_id == 9
        # Crash truncation keeps the chain; final edge carries the loop.
        assert r.counts[-1] == 1 + 7 % 4
        partial = ex.execute(bytes([1, 9, 0, 7]))
        assert partial.crash is None
