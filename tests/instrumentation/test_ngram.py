"""Unit tests for N-gram and context-sensitive coverage metrics."""

import numpy as np
import pytest

from repro.instrumentation import (ContextSensitiveInstrumentation,
                                   NGramInstrumentation, ngram_base_keys)
from repro.target import Executor

MAP = 1 << 16


class TestNGramBaseKeys:
    def test_keys_in_range(self, tiny_program):
        for n in (1, 2, 3, 4):
            keys = ngram_base_keys(tiny_program, n, MAP, seed=1)
            assert keys.min() >= 0 and keys.max() < MAP

    def test_n1_is_block_hash_only(self, tiny_program):
        """N=1 keys depend only on the destination block."""
        keys = ngram_base_keys(tiny_program, 1, MAP, seed=1)
        assert np.unique(keys).size <= tiny_program.n_edges

    def test_deeper_history_changes_keys(self, tiny_program):
        k2 = ngram_base_keys(tiny_program, 2, MAP, seed=1)
        k3 = ngram_base_keys(tiny_program, 3, MAP, seed=1)
        assert not np.array_equal(k2, k3)

    def test_invalid_n(self, tiny_program):
        with pytest.raises(ValueError):
            ngram_base_keys(tiny_program, 0, MAP, seed=1)


class TestNGramInstrumentation:
    def test_same_input_same_keys(self, tiny_program, tiny_seeds):
        inst = NGramInstrumentation(tiny_program, MAP, n=3, seed=2)
        ex = Executor(tiny_program)
        result = ex.execute(tiny_seeds[0])
        inp = np.frombuffer(tiny_seeds[0], dtype=np.uint8)
        k1, _ = inst.keys_for(result, inp)
        k2, _ = inst.keys_for(result, inp)
        assert np.array_equal(k1, k2)

    def test_context_variants_amplify_pressure(self, tiny_program):
        inst = NGramInstrumentation(tiny_program, MAP, n=3, seed=2,
                                    mean_contexts=2.0)
        possible = inst.distinct_keys_possible()
        assert possible == int(inst.n_contexts.sum())
        mean = possible / tiny_program.n_edges
        assert 1.6 < mean < 2.4, f"mean contexts {mean} off target"

    def test_single_context_mode(self, tiny_program):
        inst = NGramInstrumentation(tiny_program, MAP, n=3, seed=2,
                                    max_contexts=1, mean_contexts=1.0)
        assert inst.distinct_keys_possible() == tiny_program.n_edges

    def test_different_inputs_may_emit_different_variants(
            self, tiny_program, tiny_seeds):
        inst = NGramInstrumentation(tiny_program, MAP, n=3, seed=2)
        ex = Executor(tiny_program)
        r1, r2 = ex.execute(tiny_seeds[0]), ex.execute(tiny_seeds[1])
        shared = np.intersect1d(r1.edges, r2.edges)
        if shared.size == 0:
            pytest.skip("no shared edges between these seeds")
        k1, _ = inst.keys_for(
            r1, np.frombuffer(tiny_seeds[0], dtype=np.uint8))
        k2, _ = inst.keys_for(
            r2, np.frombuffer(tiny_seeds[1], dtype=np.uint8))
        map1 = dict(zip(r1.edges.tolist(), k1.tolist()))
        map2 = dict(zip(r2.edges.tolist(), k2.tolist()))
        multi_ctx = [e for e in shared.tolist()
                     if inst.n_contexts[e] > 1]
        differing = [e for e in multi_ctx if map1[e] != map2[e]]
        # With dozens of shared multi-context edges, at least one
        # should pick a different variant for different checksums.
        if len(multi_ctx) >= 10:
            assert differing, "context variants never varied"

    def test_parameter_validation(self, tiny_program):
        with pytest.raises(ValueError):
            NGramInstrumentation(tiny_program, MAP, max_contexts=0)
        with pytest.raises(ValueError):
            NGramInstrumentation(tiny_program, MAP, mean_contexts=9.0)


class TestContextSensitive:
    def test_keys_in_range(self, tiny_program, tiny_seeds):
        inst = ContextSensitiveInstrumentation(tiny_program, MAP, seed=4)
        result = Executor(tiny_program).execute(tiny_seeds[0])
        keys, _ = inst.keys_for(
            result, np.frombuffer(tiny_seeds[0], dtype=np.uint8))
        assert keys.min() >= 0 and keys.max() < MAP

    def test_pressure_bounded_by_max_contexts(self, tiny_program):
        inst = ContextSensitiveInstrumentation(tiny_program, MAP, seed=4,
                                               max_contexts=8)
        assert inst.n_contexts.max() <= 8
        assert inst.distinct_keys_possible() >= tiny_program.n_edges

    def test_parameter_validation(self, tiny_program):
        with pytest.raises(ValueError):
            ContextSensitiveInstrumentation(tiny_program, MAP,
                                            max_contexts=0)
        with pytest.raises(ValueError):
            ContextSensitiveInstrumentation(tiny_program, MAP,
                                            context_weight=1.5)
