"""Dedicated tests for context-sensitive coverage (Angora-style)."""

import numpy as np
import pytest

from repro.instrumentation import (AflEdgeInstrumentation,
                                   ContextSensitiveInstrumentation)
from repro.target import Executor

MAP = 1 << 16


class TestContextPressure:
    def test_pressure_exceeds_plain_edges(self, tiny_program):
        plain = AflEdgeInstrumentation(tiny_program, MAP, seed=1)
        ctx = ContextSensitiveInstrumentation(tiny_program, MAP, seed=1)
        assert ctx.distinct_keys_possible() > \
            plain.distinct_keys_possible()

    def test_heavy_tail_bounded_by_eight(self, tiny_program):
        """Angora reports up to 8x pressure; the model caps there."""
        ctx = ContextSensitiveInstrumentation(tiny_program, MAP,
                                              max_contexts=8)
        assert int(ctx.n_contexts.max()) <= 8
        assert int(ctx.n_contexts.min()) >= 1

    def test_mean_pressure_tunable(self, tiny_program):
        light = ContextSensitiveInstrumentation(
            tiny_program, MAP, context_weight=0.1)
        heavy = ContextSensitiveInstrumentation(
            tiny_program, MAP, context_weight=0.8)
        assert heavy.distinct_keys_possible() > \
            light.distinct_keys_possible()

    def test_same_input_stable_keys(self, tiny_program, tiny_seeds):
        ctx = ContextSensitiveInstrumentation(tiny_program, MAP, seed=2)
        ex = Executor(tiny_program)
        result = ex.execute(tiny_seeds[0])
        inp = np.frombuffer(tiny_seeds[0], dtype=np.uint8)
        a, _ = ctx.keys_for(result, inp)
        b, _ = ctx.keys_for(result, inp)
        assert np.array_equal(a, b)

    def test_distinct_compile_seeds_distinct_salts(self, tiny_program):
        a = ContextSensitiveInstrumentation(tiny_program, MAP, seed=1)
        b = ContextSensitiveInstrumentation(tiny_program, MAP, seed=2)
        assert not np.array_equal(a.context_salt, b.context_salt)

    def test_campaign_discovers_more_keys_than_edges(self, tiny_program):
        """Over a campaign, context variants light more map locations
        than there are covered edges — the map pressure that motivates
        big maps for this metric."""
        from repro.core import BigMapCoverage, VirginMap
        from repro.target import generate_seed_corpus
        ctx = ContextSensitiveInstrumentation(tiny_program, MAP, seed=3)
        ex = Executor(tiny_program)
        cov = BigMapCoverage(MAP)
        virgin = VirginMap(MAP)
        covered_edges = set()
        rng = np.random.default_rng(0)
        for i in range(120):
            data = rng.integers(0, 256, size=tiny_program.input_len,
                                dtype=np.uint8).tobytes()
            result = ex.execute(data)
            covered_edges.update(result.edges.tolist())
            keys, counts = ctx.keys_for(
                result, np.frombuffer(data, dtype=np.uint8))
            cov.reset()
            cov.update(keys, counts)
            cov.classify_and_compare(virgin)
        assert virgin.count_discovered() > len(covered_edges)
