"""Unit tests for the instrumentation factory and composition."""

import numpy as np
import pytest

from repro.instrumentation import (build_instrumentation,
                                   compose_lafintel_ngram, metric_names)
from repro.target import Executor


class TestFactory:
    def test_all_registered_metrics_build(self, tiny_program, tiny_seeds):
        ex = Executor(tiny_program)
        result = ex.execute(tiny_seeds[0])
        inp = np.frombuffer(tiny_seeds[0], dtype=np.uint8)
        for metric in metric_names():
            inst = build_instrumentation(metric, tiny_program, 1 << 16,
                                         seed=1)
            keys, counts = inst.keys_for(result, inp)
            assert keys.shape == result.edges.shape
            assert keys.min() >= 0 and keys.max() < (1 << 16)
            assert counts.shape == result.counts.shape

    def test_unknown_metric(self, tiny_program):
        with pytest.raises(ValueError, match="unknown metric"):
            build_instrumentation("quantum", tiny_program, 1 << 16)

    def test_metric_names_sorted_and_complete(self):
        names = metric_names()
        assert names == sorted(names)
        assert "afl-edge" in names
        assert "ngram3" in names
        assert "trace-pc-guard" in names
        assert "afl-edge+context" in names


class TestComposition:
    def test_lafintel_ngram_composition(self, tiny_program):
        inst = compose_lafintel_ngram(tiny_program, 1 << 18, n=3, seed=2)
        # The composition's program is the transformed one.
        assert inst.program.meta.get("laf_applied")
        assert inst.program.n_edges >= tiny_program.n_edges
        # Pressure amplification from both laf and contexts.
        assert inst.distinct_keys_possible() > tiny_program.n_edges

    def test_composition_executes_end_to_end(self, tiny_program,
                                             tiny_seeds):
        inst = compose_lafintel_ngram(tiny_program, 1 << 18, n=3, seed=2)
        ex = Executor(inst.program)
        result = ex.execute(tiny_seeds[0])
        keys, counts = inst.keys_for(
            result, np.frombuffer(tiny_seeds[0], dtype=np.uint8))
        assert keys.size == result.n_edges
        assert (keys < (1 << 18)).all()
