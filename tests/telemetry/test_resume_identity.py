"""Satellite guarantee: a campaign resumed from a checkpoint continues
its telemetry series **byte-identically** — the resumed run's
``plot_data`` (and every other artifact) matches an uninterrupted run.

One subtlety: ``step_until`` breaks the havoc energy loop at its
deadline, so scheduling depends on the slice boundaries. The baseline
therefore steps through the *same* windows as the interrupted run; what
the test isolates is the checkpoint/restore machinery, which must add
nothing and lose nothing.
"""

import pytest

from repro.fuzzer import Campaign, CampaignConfig
from repro.target import get_benchmark
from repro.telemetry.recorder import TelemetryRecorder

CUT = 0.25
END = 0.6


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def make_campaign(built):
    config = CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 18,
        scale=0.25, seed_scale=1.0, virtual_seconds=END,
        max_real_execs=4_000, rng_seed=11)
    return Campaign(config, built=built,
                    telemetry=TelemetryRecorder(instance=0))


@pytest.fixture(scope="module")
def baseline(built):
    """Uninterrupted run stepping through the same windows."""
    campaign = make_campaign(built)
    campaign.start()
    campaign.step_until(CUT)
    campaign.step_until(END)
    campaign.finish()
    return campaign.telemetry.artifacts()


def test_resumed_artifacts_are_byte_identical(built, baseline):
    campaign = make_campaign(built)
    campaign.start()
    campaign.step_until(CUT)
    checkpoint = campaign.snapshot()

    # Diverge past the cut, then roll back and finish the window.
    campaign.step_until(END)
    campaign.restore(checkpoint)
    campaign.step_until(END)
    campaign.finish()

    resumed = campaign.telemetry.artifacts()
    assert sorted(resumed) == sorted(baseline)
    for name in sorted(baseline):
        assert resumed[name] == baseline[name], (
            f"{name} differs after checkpoint resume")


def test_restore_into_fresh_recorder(built, baseline):
    """The checkpoint carries full telemetry state: restoring into a
    *new* campaign object (fresh recorder, as after a process restart)
    reproduces the same artifacts."""
    original = make_campaign(built)
    original.start()
    original.step_until(CUT)
    checkpoint = original.snapshot()

    reborn = make_campaign(built)
    reborn.start()
    reborn.restore(checkpoint)
    reborn.step_until(END)
    reborn.finish()

    assert reborn.telemetry.artifacts() == baseline


def test_plot_data_prefix_property(built, baseline):
    """The interrupted run's plot_data at the cut is a prefix of the
    full series — resuming appends, never rewrites."""
    campaign = make_campaign(built)
    campaign.start()
    campaign.step_until(CUT)
    partial = campaign.telemetry.afl.rows
    full_rows_rendered = baseline["plot_data"]
    from repro.telemetry.aflstats import render_plot_data
    partial_rendered = render_plot_data(partial)
    header, _, partial_body = partial_rendered.partition("\n")
    assert full_rows_rendered.startswith(header + "\n" + partial_body)
