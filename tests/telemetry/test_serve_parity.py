"""Golden parity: AFL-format sink artifacts vs aggregator series.

The AflStatsSink and the TelemetryAggregator both fold the same
canonical event stream. Parsing the sink's ``plot_data`` /
``fuzzer_stats`` output back must yield exactly the values the
aggregator serves — one stream, two projections, zero drift.
"""

from repro.telemetry.aflstats import (parse_fuzzer_stats,
                                      parse_plot_data)
from repro.telemetry.serve.aggregator import TelemetryAggregator
from repro.telemetry.sinks import AflStatsSink

from test_serve_aggregator import sample_stream, snapshot_event


def fold_both(events):
    sink = AflStatsSink()
    agg = TelemetryAggregator()
    for event in events:
        sink.emit(event)
        agg.ingest("c", event)
    return sink, agg.campaign("c")


class TestPlotDataParity:
    def test_plot_rows_align_with_series(self):
        stream = sample_stream()
        sink, series = fold_both(stream)
        rows = parse_plot_data(sink.artifacts()["plot_data"])

        assert len(rows) == len(series.series["throughput"])
        for row, (t, eps) in zip(rows, series.series["throughput"]):
            assert row["relative_time"] == int(t)
            assert row["execs_per_sec"] == eps
        for row, (t, crashes, hangs) in zip(
                rows, series.series["crashes"]):
            assert row["unique_crashes"] == crashes
            assert row["unique_hangs"] == hangs

    def test_richer_stream_stays_in_lockstep(self):
        events = [sample_stream()[0]]
        for t in range(1, 8):
            events.append(snapshot_event(
                float(t), execs=200 * t, execs_per_sec=190.0 + t,
                edges=11 * t, crashes=t // 3, hangs=t // 5,
                map_density=0.002 * t))
        sink, series = fold_both(events)
        rows = parse_plot_data(sink.artifacts()["plot_data"])
        assert [r["execs_per_sec"] for r in rows] == [
            eps for _t, eps in series.series["throughput"]]
        assert [r["unique_crashes"] for r in rows] == [
            c for _t, c, _h in series.series["crashes"]]
        assert [r["unique_hangs"] for r in rows] == [
            h for _t, _c, h in series.series["crashes"]]
        assert [r["relative_time"] for r in rows] == [
            int(t) for t, _e in series.series["coverage"]]


class TestFuzzerStatsParity:
    def test_final_stats_match_series_tails(self):
        sink, series = fold_both(sample_stream())
        stats = parse_fuzzer_stats(
            sink.artifacts()["fuzzer_stats"])

        last_t, last_execs = series.series["execs"][-1]
        assert int(stats["execs_done"]) == last_execs
        assert int(stats["last_update"]) == int(last_t)
        assert float(stats["execs_per_sec"]) == \
            series.series["throughput"][-1][1]
        _t, crashes, hangs = series.series["crashes"][-1]
        assert int(stats["unique_crashes"]) == crashes
        assert int(stats["unique_hangs"]) == hangs
        density = series.series["density"][-1][1]
        assert stats["bitmap_cvg"] == f"{density * 100.0:.2f}%"
        assert stats["afl_banner"] == series.meta["benchmark"]
