"""AFL artifact formats: render/parse inverses, header contract,
key-set enforcement."""

import pytest

from repro.core.errors import TelemetryError
from repro.telemetry.aflstats import (PLOT_FIELDS, PLOT_HEADER,
                                      STATS_KEYS, parse_fuzzer_stats,
                                      parse_plot_data, plot_row,
                                      render_fuzzer_stats,
                                      render_plot_data)


def full_stats():
    return {key: i for i, key in enumerate(STATS_KEYS)
            if key not in ("bitmap_cvg", "afl_banner", "afl_version")} | {
        "bitmap_cvg": "1.23%", "afl_banner": "zlib",
        "afl_version": "repro-sim"}


class TestFuzzerStats:
    def test_render_parse_roundtrip(self):
        text = render_fuzzer_stats(full_stats())
        parsed = parse_fuzzer_stats(text)
        assert set(parsed) == set(STATS_KEYS)
        assert parsed["afl_banner"] == "zlib"
        assert parsed["bitmap_cvg"] == "1.23%"

    def test_afl_key_column_pad(self):
        text = render_fuzzer_stats(full_stats())
        for line in text.splitlines():
            assert line[17:20] == " : "

    def test_unknown_key_rejected(self):
        with pytest.raises(TelemetryError, match="unknown fuzzer_stats"):
            render_fuzzer_stats({"not_an_afl_key": 1})

    def test_float_formatting(self):
        text = render_fuzzer_stats({"execs_per_sec": 1234.5678})
        assert "1234.57" in text

    def test_parse_rejects_garbage_line(self):
        with pytest.raises(TelemetryError, match="line 1"):
            parse_fuzzer_stats("no separator here\n")


class TestPlotData:
    def row(self, **overrides):
        values = {field: i for i, field in enumerate(PLOT_FIELDS)}
        values.update(overrides)
        return plot_row(values)

    def test_header_matches_afl(self):
        assert PLOT_HEADER == (
            "# relative_time, cycles_done, cur_path, paths_total, "
            "pending_total, pending_favs, map_size, unique_crashes, "
            "unique_hangs, max_depth, execs_per_sec")

    def test_render_parse_roundtrip(self):
        text = render_plot_data([self.row(), self.row(relative_time=9)])
        rows = parse_plot_data(text)
        assert len(rows) == 2
        assert rows[1]["relative_time"] == 9.0
        assert rows[0]["execs_per_sec"] == float(len(PLOT_FIELDS) - 1)

    def test_plot_row_orders_fields(self):
        row = self.row()
        assert row == list(range(len(PLOT_FIELDS)))

    def test_plot_row_missing_field_rejected(self):
        with pytest.raises(TelemetryError, match="missing fields"):
            plot_row({"relative_time": 0})

    def test_parse_rejects_wrong_header(self):
        with pytest.raises(TelemetryError, match="header mismatch"):
            parse_plot_data("# wrong\n1, 2, 3\n")

    def test_parse_rejects_short_row(self):
        with pytest.raises(TelemetryError, match="has 2 fields"):
            parse_plot_data(PLOT_HEADER + "\n1, 2\n")

    def test_render_rejects_short_row(self):
        with pytest.raises(TelemetryError, match="has 1 fields"):
            render_plot_data([[1]])
