"""Metrics primitives: counters, gauges, fixed-bucket histograms, and
the registry's get-or-create + snapshot + state roundtrip surface."""

import pytest

from repro.core.errors import TelemetryError
from repro.telemetry.metrics import (SHARE_BUCKETS, Counter, Gauge,
                                     Histogram, MetricsRegistry)


class TestCounter:
    def test_accumulates(self):
        c = Counter("a.b")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(TelemetryError):
            Counter("a.b").inc(-1)

    def test_registry_rejects_bad_name(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("Not A Name")


class TestHistogram:
    def test_bucketing_with_overflow(self):
        h = Histogram("h.x", (1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            h.observe(value)
        assert h.counts == [2, 1, 1]   # <=1, <=10, overflow
        assert h.total == 4

    def test_mean(self):
        h = Histogram("h.x", (10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)
        assert Histogram("h.y", (1.0,)).mean == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram("h.x", (5.0, 1.0))

    def test_share_buckets_strictly_increasing(self):
        assert list(SHARE_BUCKETS) == sorted(SHARE_BUCKETS)
        assert len(set(SHARE_BUCKETS)) == len(SHARE_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c.x") is reg.counter("c.x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m.x")
        with pytest.raises(TelemetryError):
            reg.gauge("m.x")

    def test_histogram_boundary_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h.x", (1.0, 2.0))
        with pytest.raises(TelemetryError):
            reg.histogram("h.x", (1.0, 3.0))

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.gauge("a.first").set(2.0)
        assert list(reg.snapshot()) == ["a.first", "z.last"]

    def test_state_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c.x").inc(3)
        reg.gauge("g.x").set(1.5)
        reg.histogram("h.x", (1.0,)).observe(0.5)
        state = reg.dump_state()
        reg.counter("c.x").inc(10)       # diverge after capture
        reg.load_state(state)
        assert reg.counter("c.x").value == 3
        assert reg.gauge("g.x").value == 1.5
        assert reg.histogram("h.x", (1.0,)).total == 1

    def test_load_state_resets_unknown_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c.x").inc(3)
        state = reg.dump_state()
        reg.counter("c.new").inc(7)      # created after the capture
        reg.load_state(state)
        assert reg.counter("c.new").value == 0
        assert reg.counter("c.x").value == 3
