"""Event schema enforcement and sink behavior (JSONL, ring, AFL)."""

import pytest

from repro.core.errors import TelemetryError
from repro.telemetry.events import (EVENT_SCHEMA, make_event,
                                    validate_event, validate_stream)
from repro.telemetry.sinks import (AflStatsSink, JsonlEventLog,
                                   RingBufferSink, encode_event)


def snapshot_event(t=1.0, **overrides):
    payload = dict(execs=100, execs_per_sec=100.0, edges=10,
                   map_density=0.01, collision_rate=0.001,
                   queue_depth=5, pending_total=2, pending_favs=1,
                   favored=1, queue_cycles=1, cur_path=0, crashes=0,
                   hangs=0, max_depth=2)
    payload.update(overrides)
    return make_event("snapshot", t, instance=0, **payload)


class TestSchema:
    def test_make_event_is_key_sorted(self):
        event = make_event("fault", 2.0, instance=1,
                           status="FAILED", reason="poison")
        assert list(event) == sorted(event)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError, match="unknown event kind"):
            make_event("nonsense", 0.0)

    def test_missing_field_rejected(self):
        with pytest.raises(TelemetryError, match="missing field"):
            make_event("fault", 0.0, status="FAILED")

    def test_unexpected_field_rejected(self):
        with pytest.raises(TelemetryError, match="unexpected field"):
            make_event("restart", 0.0, restarts=1, extra=5)

    def test_type_mismatch_rejected(self):
        with pytest.raises(TelemetryError, match="should be int"):
            make_event("restart", 0.0, restarts="three")

    def test_bool_is_not_an_int(self):
        with pytest.raises(TelemetryError, match="should be int"):
            make_event("restart", 0.0, restarts=True)

    def test_int_satisfies_float_fields(self):
        event = make_event("stall", 3.0, instance=2, last_progress=1)
        assert validate_event(event) is event

    def test_validate_stream_reports_position(self):
        good = make_event("restart", 0.0, restarts=1)
        with pytest.raises(TelemetryError, match="line 2"):
            validate_stream([good, {"kind": "restart"}])

    def test_every_kind_has_flat_scalar_schema(self):
        for kind, fields in EVENT_SCHEMA.items():
            for tag in fields.values():
                assert tag in ("int", "float", "str"), (kind, tag)


class TestJsonlEventLog:
    def test_canonical_encoding(self):
        event = make_event("restart", 1.5, instance=3, restarts=2)
        assert encode_event(event) == (
            '{"instance":3,"kind":"restart","restarts":2,"t":1.5}')

    def test_artifact_roundtrip(self):
        log = JsonlEventLog()
        log.emit(make_event("restart", 1.0, restarts=1))
        content = log.artifacts()["events.jsonl"]
        assert content.endswith("\n")
        assert len(content.splitlines()) == 1

    def test_empty_log_writes_nothing(self):
        assert JsonlEventLog().artifacts() == {}

    def test_state_is_a_value_copy(self):
        log = JsonlEventLog()
        log.emit(make_event("restart", 1.0, restarts=1))
        state = log.dump_state()
        log.emit(make_event("restart", 2.0, restarts=2))
        fresh = JsonlEventLog()
        fresh.load_state(state)
        assert len(fresh.events) == 1


class TestRingBuffer:
    def test_keeps_most_recent(self):
        ring = RingBufferSink(size=3)
        for i in range(5):
            ring.emit(make_event("restart", float(i), restarts=i))
        assert [e["restarts"] for e in ring.events] == [2, 3, 4]

    def test_load_state_respects_capacity(self):
        big = [make_event("restart", float(i), restarts=i)
               for i in range(10)]
        ring = RingBufferSink(size=4)
        ring.load_state(big)
        assert [e["restarts"] for e in ring.events] == [6, 7, 8, 9]


class TestAflStatsSink:
    def make_sink(self):
        sink = AflStatsSink()
        sink.emit(make_event("campaign_start", 0.0, instance=0,
                             benchmark="zlib", fuzzer="bigmap",
                             map_size=1 << 16, rng_seed=0))
        sink.emit(snapshot_event(t=5.0, execs=500, queue_depth=7))
        sink.emit(make_event("campaign_finish", 5.0, instance=0,
                             execs=500, edges=10, crashes=0, hangs=0,
                             stop_reason="budget"))
        return sink

    def test_plot_row_per_snapshot(self):
        sink = self.make_sink()
        assert len(sink.rows) == 1
        row = dict(zip(
            ("relative_time", "cycles_done", "cur_path", "paths_total",
             "pending_total", "pending_favs", "map_size",
             "unique_crashes", "unique_hangs", "max_depth",
             "execs_per_sec"), sink.rows[0]))
        assert row["relative_time"] == 5
        assert row["paths_total"] == 7
        assert row["map_size"] == 1 << 16

    def test_fuzzer_stats_derivation(self):
        stats = self.make_sink().fuzzer_stats()
        assert stats["start_time"] == 0
        assert stats["execs_done"] == 500
        assert stats["afl_banner"] == "zlib"
        assert stats["bitmap_cvg"] == "1.00%"

    def test_artifacts_empty_before_any_event(self):
        assert AflStatsSink().artifacts() == {}

    def test_state_roundtrip(self):
        sink = self.make_sink()
        state = sink.dump_state()
        fresh = AflStatsSink()
        fresh.load_state(state)
        assert fresh.artifacts() == sink.artifacts()
