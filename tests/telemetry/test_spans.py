"""Span tracer: clock-delta measurement, explicit attribution, the
decorator form, state roundtrip, and the no-op disabled path."""

from repro.telemetry.spans import (NULL_TRACER, SPAN_TAXONOMY, NullSpan,
                                   SpanTracer)


class FakeClock:
    def __init__(self):
        self.cycles = 0.0

    def __call__(self):
        return self.cycles


class TestSpanTracer:
    def test_measures_clock_delta(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        with tracer.span("execute"):
            clock.cycles += 120.0
        with tracer.span("execute"):
            clock.cycles += 30.0
        span = tracer.span("execute")
        assert span.calls == 2
        assert span.cycles == 150.0

    def test_handles_are_stable(self):
        tracer = SpanTracer()
        assert tracer.span("mutate") is tracer.span("mutate")

    def test_add_deposits_priced_cycles(self):
        tracer = SpanTracer()
        tracer.add("op.scatter", 42.0)
        tracer.add("op.scatter", 8.0, calls=3)
        span = tracer.span("op.scatter")
        assert span.calls == 4
        assert span.cycles == 50.0

    def test_trace_decorator(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)

        @tracer.trace("cost_eval")
        def priced():
            clock.cycles += 7.0
            return "ok"

        assert priced() == "ok"
        assert tracer.span("cost_eval").calls == 1
        assert tracer.span("cost_eval").cycles == 7.0

    def test_profile_is_name_sorted(self):
        tracer = SpanTracer()
        tracer.add("zz", 1.0)
        tracer.add("aa", 1.0)
        assert list(tracer.profile()) == ["aa", "zz"]

    def test_state_roundtrip_resets_new_spans(self):
        tracer = SpanTracer()
        tracer.add("execute", 10.0)
        state = tracer.dump_state()
        tracer.add("execute", 5.0)
        tracer.add("late", 3.0)          # created after the capture
        tracer.load_state(state)
        assert tracer.span("execute").cycles == 10.0
        assert tracer.span("late").cycles == 0.0
        assert tracer.span("late").calls == 0

    def test_unbound_tracer_measures_zero(self):
        tracer = SpanTracer()
        with tracer.span("execute"):
            pass
        assert tracer.span("execute").calls == 1
        assert tracer.span("execute").cycles == 0.0


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert SpanTracer().enabled is True

    def test_span_is_shared_noop(self):
        a = NULL_TRACER.span("execute")
        b = NULL_TRACER.span("mutate")
        assert a is b
        assert isinstance(a, NullSpan)
        with a:
            pass
        assert a.calls == 0

    def test_trace_returns_function_unchanged(self):
        def fn():
            return 1
        assert NULL_TRACER.trace("x")(fn) is fn

    def test_profile_and_state_empty(self):
        assert NULL_TRACER.profile() == {}
        assert NULL_TRACER.dump_state() == {}
        NULL_TRACER.load_state({})       # harmless no-op


def test_taxonomy_covers_campaign_hot_path():
    for name in ("run_one", "mutate", "execute", "classify_compare",
                 "cost_eval", "sync"):
        assert name in SPAN_TAXONOMY
