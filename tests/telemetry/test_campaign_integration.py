"""Telemetry threaded through a real campaign: zero behavioral impact,
byte-identical artifacts across same-config runs, schema-valid streams,
and hot-path span accounting."""

import json

import pytest

from repro.fuzzer import Campaign, CampaignConfig
from repro.target import get_benchmark
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.validate import validate_directory


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def config(**kwargs):
    defaults = dict(benchmark="libpng", fuzzer="bigmap",
                    map_size=1 << 18, scale=0.25, seed_scale=1.0,
                    virtual_seconds=0.6, max_real_execs=4_000,
                    rng_seed=11)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


def run_recorded(built, **kwargs):
    recorder = TelemetryRecorder(instance=0)
    result = Campaign(config(**kwargs), built=built,
                      telemetry=recorder).run()
    return result, recorder


class TestBehavioralTransparency:
    def test_results_identical_with_and_without_telemetry(self, built):
        bare = Campaign(config(), built=built).run()
        recorded, _ = run_recorded(built)
        assert recorded == bare

    def test_two_runs_produce_identical_artifacts(self, built):
        _, first = run_recorded(built)
        _, second = run_recorded(built)
        assert first.artifacts() == second.artifacts()

    def test_seed_changes_the_stream(self, built):
        _, first = run_recorded(built)
        _, other = run_recorded(built, rng_seed=12)
        assert (first.artifacts()["events.jsonl"] !=
                other.artifacts()["events.jsonl"])


class TestStreamContents:
    def test_lifecycle_and_snapshot_events(self, built):
        _, recorder = run_recorded(built)
        kinds = [e["kind"] for e in recorder.events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_finish"
        assert kinds.count("campaign_start") == 1
        assert kinds.count("campaign_finish") == 1
        assert "snapshot" in kinds

    def test_snapshot_series_is_monotonic(self, built):
        _, recorder = run_recorded(built)
        times = [e["t"] for e in recorder.events
                 if e["kind"] == "snapshot"]
        assert times == sorted(times)

    def test_final_counts_match_result(self, built):
        result, recorder = run_recorded(built)
        finish = recorder.events[-1]
        assert finish["execs"] == result.execs
        assert finish["edges"] == result.discovered_locations
        assert finish["stop_reason"] == result.stopped_by

    def test_hot_path_span_accounting(self, built):
        result, recorder = run_recorded(built)
        profile = recorder.tracer.profile()
        for name in ("run_one", "mutate", "execute", "classify_compare",
                     "cost_eval"):
            assert profile[name]["calls"] > 0, name
        # One execution == one trace + one classify + one pricing.
        assert profile["execute"]["calls"] == result.execs
        assert profile["classify_compare"]["calls"] == result.execs
        assert profile["cost_eval"]["calls"] == result.execs
        # run_one wraps the whole round: it cannot out-count mutations.
        assert profile["run_one"]["calls"] <= profile["mutate"]["calls"]

    def test_memsim_share_histograms_recorded(self, built):
        result, recorder = run_recorded(built)
        snap = recorder.registry.snapshot()
        shares = {name: m for name, m in snap.items()
                  if name.startswith("memsim.share.")}
        assert shares, "cost attribution recorded no share histograms"
        for name, metric in shares.items():
            assert metric["total"] == result.execs, name

    def test_flushed_directory_validates(self, built, tmp_path):
        _, recorder = run_recorded(built)
        recorder.flush(str(tmp_path))
        report = validate_directory(str(tmp_path))
        assert report["events"] == len(recorder.events)
        assert report["plot_rows"] >= 1
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert set(metrics) == {"metrics", "spans"}
