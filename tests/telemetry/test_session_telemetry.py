"""SessionTelemetry across a parallel session: per-instance artifact
trees, supervisor event emission under injected faults, and behavioral
transparency of the session-level recorder."""

import pytest

from repro.faults import (CORRUPT_SYNC, CRASH, FaultEvent, FaultPlan,
                          RestartPolicy)
from repro.faults.supervisor import SessionSupervisor
from repro.fuzzer import CampaignConfig, ParallelSession
from repro.target import get_benchmark
from repro.telemetry.recorder import SessionTelemetry
from repro.telemetry.validate import validate_tree

BUDGET = 0.4
SYNC = BUDGET / 8.0


@pytest.fixture(scope="module")
def built():
    return get_benchmark("libpng").build(scale=0.25, seed_scale=1.0)


def config():
    return CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 18,
        scale=0.25, seed_scale=1.0, virtual_seconds=BUDGET,
        max_real_execs=100_000, rng_seed=3)


def session(built, k=3, telemetry=None, **kwargs):
    kwargs.setdefault("sync_interval", SYNC)
    return ParallelSession(config(), k, built=built,
                           telemetry=telemetry, **kwargs)


def summary_key(summary):
    return (summary.total_execs, summary.discovered_locations,
            summary.unique_crashes,
            tuple(r.execs for r in summary.per_instance))


class TestSupervisorEvents:
    def test_fault_and_restart_events(self):
        telemetry = SessionTelemetry()
        supervisor = SessionSupervisor(2, RestartPolicy(),
                                       telemetry=telemetry)
        supervisor.mark_failed(1, now=0.5, reason="crash fault")
        supervisor.mark_restarted(1, now=0.7)
        supervisor.mark_stalled(0, now=0.9, last_progress=0.4)
        supervisor.mark_quarantined(0, 1, now=1.0, entries=3)
        kinds = [(e["kind"], e["instance"])
                 for e in telemetry.session.events]
        assert kinds == [("fault", 1), ("restart", 1), ("stall", 0),
                         ("quarantine", 0)]
        quarantine = telemetry.session.events[-1]
        assert quarantine["exporter"] == 1
        assert quarantine["entries"] == 3
        assert supervisor.quarantined_imports == 3

    def test_no_telemetry_is_silent(self):
        supervisor = SessionSupervisor(2, RestartPolicy())
        supervisor.mark_failed(0, now=0.5, reason="crash fault")
        supervisor.mark_restarted(0)   # must not raise


class TestParallelSession:
    def test_telemetry_does_not_change_results(self, built):
        plain = session(built).run()
        recorded = session(built, telemetry=SessionTelemetry()).run()
        assert summary_key(plain) == summary_key(recorded)

    def test_per_instance_streams_and_sync_span(self, built):
        telemetry = SessionTelemetry()
        session(built, telemetry=telemetry).run()
        assert telemetry.instances == [0, 1, 2]
        for i in telemetry.instances:
            recorder = telemetry.for_instance(i)
            kinds = [e["kind"] for e in recorder.events]
            assert kinds[0] == "campaign_start"
            assert kinds[-1] == "campaign_finish"
            assert all(e["instance"] == i for e in recorder.events)
        sync = telemetry.session.tracer.profile().get("sync")
        assert sync is not None and sync["calls"] >= 1

    def test_crash_fault_emits_session_events(self, built):
        telemetry = SessionTelemetry()
        plan = FaultPlan([FaultEvent(time=BUDGET / 4, instance=1,
                                     kind=CRASH)])
        session(built, telemetry=telemetry, fault_plan=plan,
                restart_policy=RestartPolicy(
                    max_restarts=2, backoff_base=0.05)).run()
        kinds = [e["kind"] for e in telemetry.session.events]
        assert "fault" in kinds
        assert "restart" in kinds

    def test_corrupt_sync_emits_quarantine(self, built):
        telemetry = SessionTelemetry()
        plan = FaultPlan([FaultEvent(time=BUDGET / 4, instance=1,
                                     kind=CORRUPT_SYNC)])
        summary = session(built, telemetry=telemetry,
                          fault_plan=plan).run()
        quarantines = [e for e in telemetry.session.events
                       if e["kind"] == "quarantine"]
        if summary.quarantined_imports:
            assert sum(e["entries"] for e in quarantines) == \
                summary.quarantined_imports
            assert all(e["exporter"] == 1 for e in quarantines)

    def test_flush_tree_validates(self, built, tmp_path):
        telemetry = SessionTelemetry()
        plan = FaultPlan([FaultEvent(time=BUDGET / 4, instance=0,
                                     kind=CRASH)])
        session(built, telemetry=telemetry, fault_plan=plan,
                restart_policy=RestartPolicy(
                    max_restarts=2, backoff_base=0.05)).run()
        telemetry.flush(str(tmp_path))
        report = validate_tree(str(tmp_path))
        assert set(report) >= {".", "instance-000", "instance-001",
                               "instance-002"}
        assert report["instance-000"]["plot_rows"] >= 1
