"""Aggregator determinism: pure fold, delta replay, level shares."""

import json

import pytest

from repro.core.errors import TelemetryError
from repro.telemetry.events import EVENT_SCHEMA, make_event
from repro.telemetry.serve.aggregator import (FLEET_COUNTS,
                                              IGNORED_KINDS,
                                              SERIES_NAMES,
                                              AggregatorService,
                                              TelemetryAggregator,
                                              canonical_json)
from repro.telemetry.serve.tailer import EVENTS_FILENAME
from repro.telemetry.sinks import encode_event


def snapshot_event(t, instance=0, **overrides):
    payload = dict(execs=int(100 * t), execs_per_sec=100.0, edges=int(10 * t),
                   map_density=0.01 * t, collision_rate=0.001,
                   queue_depth=5, pending_total=2, pending_favs=1,
                   favored=1, queue_cycles=1, cur_path=0, crashes=0,
                   hangs=0, max_depth=2)
    payload.update(overrides)
    return make_event("snapshot", t, instance=instance, **payload)


def sample_stream(instance=0):
    return [
        make_event("campaign_start", 0.0, instance=instance,
                   benchmark="zlib", fuzzer="bigmap",
                   map_size=1 << 16, rng_seed=7),
        snapshot_event(1.0, instance),
        make_event("restart", 1.5, instance=instance, restarts=1),
        snapshot_event(2.0, instance, crashes=1),
        make_event("campaign_finish", 3.0, instance=instance,
                   execs=300, edges=25, crashes=1, hangs=0,
                   stop_reason="budget"),
    ]


class TestFold:
    def test_snapshot_feeds_every_numeric_series(self):
        agg = TelemetryAggregator()
        agg.ingest("c", snapshot_event(1.0))
        series = agg.campaign("c")
        assert series.series["coverage"] == [[1.0, 10]]
        assert series.series["throughput"] == [[1.0, 100.0]]
        assert series.series["execs"] == [[1.0, 100]]
        assert series.series["density"] == [[1.0, 0.01]]
        assert series.series["crashes"] == [[1.0, 0, 0]]

    def test_meta_final_and_timeline(self):
        agg = TelemetryAggregator()
        for event in sample_stream():
            agg.ingest("c", event)
        series = agg.campaign("c")
        assert series.meta["benchmark"] == "zlib"
        assert series.meta["instance"] == 0
        assert series.final["stop_reason"] == "budget"
        [(t, kind, instance, payload)] = series.series["timeline"]
        assert (t, kind, instance) == (1.5, "restart", 0)
        assert payload == {"restarts": 1}

    def test_fleet_counters_in_declared_order(self):
        agg = TelemetryAggregator()
        agg.ingest("f", make_event(
            "trial_dispatch", 1.0, instance=-1, trial=0,
            benchmark="zlib", fuzzer="afl", map_size=65536,
            rng_seed=0, attempt=1))
        agg.ingest("f", make_event(
            "trial_finish", 2.0, instance=-1, trial=0, attempt=1,
            status="ok", execs=100, edges=5, crashes=0))
        rows = agg.campaign("f").series["fleet"]
        assert rows[0] == [1.0, 1, 0, 0, 0, 0]
        assert rows[1] == [2.0, 1, 1, 0, 0, 0]
        assert agg.campaign("f").fleet_counts == dict(
            zip(FLEET_COUNTS, (1, 1, 0, 0, 0)))

    def test_failed_trial_counts_as_failed(self):
        agg = TelemetryAggregator()
        agg.ingest("f", make_event(
            "trial_finish", 2.0, instance=-1, trial=0, attempt=3,
            status="lost", execs=0, edges=0, crashes=0))
        assert agg.campaign("f").fleet_counts["failed"] == 1

    def test_every_schema_kind_is_covered(self):
        # The TEL104 invariant, checked dynamically: constructing the
        # aggregator must not raise, and handlers+ignores == schema.
        agg = TelemetryAggregator()
        covered = set(agg._dispatch) | set(IGNORED_KINDS)
        assert covered == set(EVENT_SCHEMA)

    def test_unhandled_kind_fails_construction(self, monkeypatch):
        monkeypatch.setitem(EVENT_SCHEMA, "brand_new_kind",
                            {"x": "int"})
        with pytest.raises(TelemetryError, match="brand_new_kind"):
            TelemetryAggregator()


class TestDeterminism:
    def test_chunked_equals_bulk_byte_identical(self):
        stream = sample_stream()
        bulk = TelemetryAggregator()
        for event in stream:
            bulk.ingest("c", event)
        chunked = TelemetryAggregator()
        for event in stream[:2]:
            chunked.ingest("c", event)
        for event in stream[2:]:
            chunked.ingest("c", event)
        assert (canonical_json(bulk.campaign("c").as_dict()) ==
                canonical_json(chunked.campaign("c").as_dict()))

    def test_campaign_interleaving_is_irrelevant_per_campaign(self):
        a_events = sample_stream(instance=0)
        b_events = sample_stream(instance=1)
        sequential = TelemetryAggregator()
        for event in a_events:
            sequential.ingest("a", event)
        for event in b_events:
            sequential.ingest("b", event)
        interleaved = TelemetryAggregator()
        for ea, eb in zip(a_events, b_events):
            interleaved.ingest("b", eb)
            interleaved.ingest("a", ea)
        for cid in ("a", "b"):
            assert (canonical_json(sequential.campaign(cid).as_dict())
                    == canonical_json(
                        interleaved.campaign(cid).as_dict()))

    def test_delta_replay_reproduces_snapshot(self):
        agg = TelemetryAggregator()
        replayed = agg.snapshot()
        deltas = []
        for event in sample_stream():
            deltas.extend(agg.ingest("c", event))
        agg.ingest_levels("c", {"l1": 0.5, "dram": 0.1})
        for delta in agg.deltas_since(replayed["seq"]):
            TelemetryAggregator.apply_delta(replayed, delta)
        assert (canonical_json(replayed) ==
                canonical_json(agg.snapshot()))

    def test_deltas_since_dense_and_bounded(self):
        agg = TelemetryAggregator(delta_log=4)
        for event in sample_stream():
            agg.ingest("c", event)
        assert agg.deltas_since(agg.seq) == []
        covered = agg.deltas_since(agg.seq - 4)
        assert [d["seq"] for d in covered] == list(
            range(agg.seq - 3, agg.seq + 1))
        # Older than the ring: caller must resnapshot.
        assert agg.deltas_since(0) is None
        assert agg.deltas_since(agg.seq + 1) is None

    def test_series_names_are_stable_contract(self):
        assert SERIES_NAMES == ("coverage", "throughput", "execs",
                                "density", "crashes", "timeline",
                                "fleet")


class TestAggregatorService:
    def test_polls_events_and_level_shares(self, tmp_path):
        directory = tmp_path / "instance-0"
        directory.mkdir()
        with open(directory / EVENTS_FILENAME, "w",
                  encoding="utf-8") as fh:
            for event in sample_stream():
                fh.write(encode_event(event) + "\n")
        (directory / "metrics.json").write_text(json.dumps({
            "metrics": {
                "memsim.share.l1": {"kind": "histogram",
                                    "sum": 30.0, "total": 60},
                "memsim.share.dram": {"kind": "histogram",
                                      "sum": 6.0, "total": 60},
                "memsim.other": {"kind": "counter", "total": 3},
            }}))
        service = AggregatorService(str(tmp_path))
        deltas = service.poll()
        assert deltas
        series = service.aggregator.campaign("instance-0")
        assert series.levels == {"dram": 0.1, "l1": 0.5}
        # Unchanged files produce no further deltas (idempotent poll).
        assert service.poll() == []

    def test_live_tail_equals_post_hoc_bytes(self, tmp_path):
        stream = sample_stream()
        path = tmp_path / EVENTS_FILENAME
        with open(path, "w", encoding="utf-8") as fh:
            for event in stream[:2]:
                fh.write(encode_event(event) + "\n")
        live = AggregatorService(str(tmp_path))
        live.poll()
        with open(path, "a", encoding="utf-8") as fh:
            for event in stream[2:]:
                fh.write(encode_event(event) + "\n")
        live.poll()
        post_hoc = AggregatorService(str(tmp_path))
        post_hoc.poll()
        assert (canonical_json(live.aggregator.snapshot()) ==
                canonical_json(post_hoc.aggregator.snapshot()))
