"""Incremental tailing: FileTailer/TreeTailer and the --follow view."""

import os

import pytest

from repro.core.errors import TelemetryError
from repro.telemetry.events import make_event
from repro.telemetry.introspect import StatusTracker
from repro.telemetry.serve.tailer import (EVENTS_FILENAME, FileTailer,
                                          TreeTailer,
                                          metrics_watcher_paths)
from repro.telemetry.sinks import encode_event


def restart_event(t, restarts=1, instance=0):
    return make_event("restart", t, instance=instance,
                      restarts=restarts)


def append_events(path, events):
    with open(path, "a", encoding="utf-8") as fh:
        for event in events:
            fh.write(encode_event(event) + "\n")


class TestFileTailer:
    def test_reads_only_appended_bytes(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        append_events(path, [restart_event(1.0)])
        tailer = FileTailer(str(path))
        assert [e["t"] for e in tailer.poll()] == [1.0]
        first_read = tailer.bytes_read
        assert first_read == os.path.getsize(path)

        append_events(path, [restart_event(2.0), restart_event(3.0)])
        assert [e["t"] for e in tailer.poll()] == [2.0, 3.0]
        # The regression handle: total bytes read equals file size,
        # not (refresh count x size).
        assert tailer.bytes_read == os.path.getsize(path)
        assert tailer.poll() == []
        assert tailer.bytes_read == os.path.getsize(path)

    def test_partial_trailing_line_is_not_consumed(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        full = encode_event(restart_event(1.0)) + "\n"
        partial = encode_event(restart_event(2.0))
        path.write_text(full + partial[:10])
        tailer = FileTailer(str(path))
        assert [e["t"] for e in tailer.poll()] == [1.0]
        # Writer finishes the line: only then is it handed out.
        path.write_text(full + partial + "\n")
        assert [e["t"] for e in tailer.poll()] == [2.0]

    def test_truncation_restarts_from_zero(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        append_events(path, [restart_event(1.0), restart_event(2.0)])
        tailer = FileTailer(str(path))
        assert len(tailer.poll()) == 2
        path.write_text(encode_event(restart_event(9.0)) + "\n")
        assert [e["t"] for e in tailer.poll()] == [9.0]
        assert tailer.lineno == 2

    def test_missing_file_polls_empty(self, tmp_path):
        tailer = FileTailer(str(tmp_path / "absent.jsonl"))
        assert tailer.poll() == []

    def test_invalid_json_names_file_and_line(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        append_events(path, [restart_event(1.0)])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        tailer = FileTailer(str(path))
        with pytest.raises(TelemetryError, match=r":2: invalid JSON"):
            tailer.poll()


class TestTreeTailer:
    def test_discovers_new_campaign_dirs_between_polls(self, tmp_path):
        first = tmp_path / "instance-0"
        first.mkdir()
        append_events(first / EVENTS_FILENAME, [restart_event(1.0)])
        tailer = TreeTailer(str(tmp_path))
        assert [cid for cid, _ in tailer.poll()] == ["instance-0"]

        second = tmp_path / "instance-1"
        second.mkdir()
        append_events(second / EVENTS_FILENAME, [restart_event(2.0)])
        assert [cid for cid, _ in tailer.poll()] == ["instance-1"]
        assert tailer.campaigns == ["instance-0", "instance-1"]

    def test_root_level_log_is_campaign_dot(self, tmp_path):
        append_events(tmp_path / EVENTS_FILENAME, [restart_event(1.0)])
        tailer = TreeTailer(str(tmp_path))
        assert [cid for cid, _ in tailer.poll()] == ["."]
        [(cid, metrics)] = metrics_watcher_paths(str(tmp_path), ["."])
        assert cid == "."
        assert metrics == os.path.join(str(tmp_path), "metrics.json")


class TestStatusTracker:
    def test_refresh_reads_incrementally_on_growing_file(self, tmp_path):
        path = tmp_path / EVENTS_FILENAME
        events = [restart_event(float(t), restarts=t)
                  for t in range(1, 21)]
        append_events(path, events[:10])
        tracker = StatusTracker(str(tmp_path))
        view = tracker.refresh()
        assert "restart" in view
        after_first = tracker.bytes_read
        assert after_first == os.path.getsize(path)
        # Many refreshes with no growth read zero further bytes.
        for _ in range(5):
            tracker.refresh()
        assert tracker.bytes_read == after_first
        # Growth reads only the appended suffix.
        append_events(path, events[10:])
        view = tracker.refresh()
        assert tracker.bytes_read == os.path.getsize(path)
        assert "restarts=20" in view

    def test_empty_root_renders_placeholder(self, tmp_path):
        tracker = StatusTracker(str(tmp_path))
        assert "no telemetry artifacts" in tracker.refresh()


def test_cli_follow_refreshes_bounded(tmp_path, capsys):
    from repro.cli import main
    append_events(tmp_path / EVENTS_FILENAME, [restart_event(1.0)])
    rc = main(["telemetry", "--telemetry-dir", str(tmp_path),
               "--follow", "--interval", "0", "--refreshes", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("recent events:") == 2
