"""Static HTML report: parity with fleet.report stats, determinism."""

import json

import pytest

from repro.fleet.report import group_stats, metric_stats, render_report
from repro.fleet.store import ResultsStore
from repro.telemetry.serve.cli import report_main
from repro.telemetry.serve.reportgen import (MAX_CHART_SERIES,
                                             coverage_band,
                                             generate_report,
                                             render_html_report)

from test_serve_http import populate_store


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "results.sqlite"
    populate_store(path)
    return path


class TestCoverageBand:
    def test_median_band_over_union_grid(self):
        rows = coverage_band([[(1.0, 10), (2.0, 20)],
                              [(1.0, 12), (3.0, 30)]])
        assert [t for t, _m, _lo, _hi in rows] == [1.0, 2.0, 3.0]
        # At t=2.0 the step reads are 20 and 12 -> median 16.
        assert rows[1][1] == 16.0
        for _t, median, lo, hi in rows:
            assert lo <= median <= hi

    def test_deterministic_and_empty_input(self):
        curves = [[(1.0, 5), (4.0, 9)], [(2.0, 6)], []]
        assert coverage_band(curves, seed=3) == coverage_band(
            curves, seed=3)
        assert coverage_band([]) == []
        assert coverage_band([[], []]) == []


class TestHtmlParity:
    def test_tables_carry_fleet_stats_values(self, store_path):
        page = render_html_report({"fleet": str(store_path)})
        with ResultsStore(str(store_path),
                          mode=ResultsStore.RO) as store:
            stats = metric_stats(store, "zlib", 1 << 16,
                                 store.fuzzers(), "edges", seed=0)
            text = render_report(store, seed=0)
        (pair,) = stats["pairs"]
        # The exact strings the text report prints for p/A12/U must
        # appear in the HTML tables: one computation, two renderers.
        for token in (f'{pair["u1"]:.1f}', f'{pair["p_value"]:.4f}',
                      f'{pair["a12"]:.3f}'):
            assert token in page
            assert token in text
        for entry in stats["fuzzers"]:
            assert entry["fuzzer"] in page

    def test_chart_svg_legend_and_band(self, store_path):
        page = render_html_report({"fleet": str(store_path)})
        assert page.count("<svg") == 1
        assert 'stroke-width="2"' in page
        assert 'fill-opacity="0.15"' in page
        # Two fuzzers share the plot: a legend is mandatory.
        assert 'class="legend"' in page
        assert "var(--s1)" in page and "var(--s2)" in page
        assert "prefers-color-scheme: dark" in page

    def test_deterministic_bytes(self, store_path):
        stores = {"fleet": str(store_path)}
        assert (render_html_report(stores, seed=1) ==
                render_html_report(stores, seed=1))

    def test_max_chart_series_is_three(self):
        assert MAX_CHART_SERIES == 3


class TestGenerate:
    def test_generate_writes_file(self, store_path, tmp_path):
        out = tmp_path / "report.html"
        page = generate_report({"fleet": str(store_path)}, str(out))
        assert out.read_text(encoding="utf-8") == page
        assert page.startswith("<!doctype html>")

    def test_report_cli(self, store_path, tmp_path, capsys):
        out = tmp_path / "cli-report.html"
        rc = report_main(["--store", f"fleet={store_path}",
                          "--out", str(out), "--seed", "0"])
        assert rc == 0
        page = out.read_text(encoding="utf-8")
        with ResultsStore(str(store_path),
                          mode=ResultsStore.RO) as store:
            (group,) = group_stats(store, seed=0)
        for metric in group["metrics"]:
            assert f"metric: {metric['metric']}" in page
        assert str(out) in capsys.readouterr().out
