"""TelemetryServer: REST endpoints, websocket protocol, fleet views.

The acceptance pin for DESIGN.md §12: bytes served live (REST series,
websocket snapshot+deltas) are identical to a post-hoc aggregation of
the same JSONL files.
"""

import asyncio
import dataclasses
import json

from repro.fleet.report import REPORT_METRICS, group_stats
from repro.fleet.spec import FleetSpec
from repro.fleet.store import ResultsStore
from repro.fuzzer import CampaignConfig, run_campaign
from repro.telemetry.serve.aggregator import (AggregatorService,
                                              TelemetryAggregator,
                                              canonical_json)
from repro.telemetry.serve.http import TelemetryServer, _read_frame
from repro.telemetry.serve.tailer import EVENTS_FILENAME
from repro.telemetry.sinks import encode_event

from test_serve_aggregator import sample_stream

_TEMPLATE = run_campaign(CampaignConfig(
    benchmark="zlib", fuzzer="bigmap", map_size=1 << 14, scale=0.05,
    seed_scale=0.02, virtual_seconds=1.0, max_real_execs=400))


def write_stream(directory, events, mode="w"):
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / EVENTS_FILENAME, mode,
              encoding="utf-8") as fh:
        for event in events:
            fh.write(encode_event(event) + "\n")


def populate_store(path, n_trials=3):
    trials = FleetSpec(fuzzers=("afl", "bigmap"),
                       benchmarks=("zlib",), map_sizes=(1 << 16,),
                       n_trials=n_trials).expand()
    with ResultsStore(str(path)) as store:
        for trial in trials:
            result = dataclasses.replace(
                _TEMPLATE, execs=1000 + 37 * trial.trial_id,
                virtual_seconds=2.0,
                throughput=(1000 + 37 * trial.trial_id) / 2.0,
                discovered_locations=40 + trial.trial_id,
                unique_crashes=trial.trial_id % 2, unique_hangs=0,
                stopped_by="budget",
                coverage_curve=[(0.5, 20), (2.0, 40 + trial.trial_id)])
            store.record_trial(trial, result, attempts=1)


async def http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((f"GET {path} HTTP/1.1\r\n"
                  f"Host: test\r\n\r\n").encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n")[0].decode("ascii")
    return status, body


def serve(tmp_path, coro_factory, **kwargs):
    """Start a server on a free port, run the test coroutine, stop."""

    async def run():
        server = TelemetryServer(str(tmp_path), poll_interval=0.05,
                                 **kwargs)
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestRest:
    def test_campaigns_listing(self, tmp_path):
        write_stream(tmp_path / "instance-0", sample_stream())

        async def check(server):
            status, body = await http_get(server.port,
                                          "/api/campaigns")
            assert status == "HTTP/1.1 200 OK"
            payload = json.loads(body)
            (campaign,) = payload["campaigns"]
            assert campaign["id"] == "instance-0"
            assert campaign["meta"]["benchmark"] == "zlib"
            assert payload["seq"] > 0

        serve(tmp_path, check)

    def test_series_bytes_equal_post_hoc_aggregation(self, tmp_path):
        write_stream(tmp_path / "instance-0", sample_stream())

        async def check(server):
            _, body = await http_get(
                server.port, "/api/campaigns/instance-0/series")
            return body

        live_bytes = serve(tmp_path, check)
        post_hoc = AggregatorService(str(tmp_path))
        post_hoc.poll()
        expected = canonical_json(
            post_hoc.aggregator.campaign("instance-0").as_dict()
        ).encode("utf-8")
        assert live_bytes == expected

    def test_dashboard_and_errors(self, tmp_path):
        async def check(server):
            status, body = await http_get(server.port, "/")
            assert status == "HTTP/1.1 200 OK"
            assert b"repro-fuzz live telemetry" in body
            status, _ = await http_get(
                server.port, "/api/campaigns/nope/series")
            assert status.startswith("HTTP/1.1 404")
            status, _ = await http_get(server.port, "/definitely/not")
            assert status.startswith("HTTP/1.1 404")

        serve(tmp_path, check)

    def test_rest_poll_sees_events_written_after_start(self, tmp_path):
        async def check(server):
            write_stream(tmp_path / "late", sample_stream())
            _, body = await http_get(server.port, "/api/campaigns")
            assert [c["id"] for c in
                    json.loads(body)["campaigns"]] == ["late"]

        serve(tmp_path, check)


class TestFleetEndpoints:
    def test_trials_view(self, tmp_path):
        store_path = tmp_path / "results.sqlite"
        populate_store(store_path)

        async def check(server):
            _, body = await http_get(server.port,
                                     "/api/fleet/fleet/trials")
            return json.loads(body)

        payload = serve(tmp_path, check,
                        stores={"fleet": str(store_path)})
        assert payload["store"] == "fleet"
        assert len(payload["trials"]) == 6
        assert payload["trials"][0]["fuzzer"] == "afl"
        assert payload["lost"] == []

    def test_stats_view_matches_group_stats(self, tmp_path):
        store_path = tmp_path / "results.sqlite"
        populate_store(store_path)

        async def check(server):
            _, body = await http_get(server.port,
                                     "/api/fleet/fleet/stats")
            return json.loads(body)

        payload = serve(tmp_path, check,
                        stores={"fleet": str(store_path)})
        with ResultsStore(str(store_path),
                          mode=ResultsStore.RO) as store:
            expected = group_stats(store, seed=0)
        assert payload["metrics"] == list(REPORT_METRICS)
        assert payload["groups"] == json.loads(
            canonical_json(expected))

    def test_unknown_and_missing_store(self, tmp_path):
        async def check(server):
            status, _ = await http_get(server.port,
                                       "/api/fleet/nope/stats")
            assert status.startswith("HTTP/1.1 404")
            status, _ = await http_get(server.port,
                                       "/api/fleet/ghost/trials")
            assert status.startswith("HTTP/1.1 503")

        serve(tmp_path, check,
              stores={"ghost": str(tmp_path / "absent.sqlite")})


class TestWebsocket:
    def test_snapshot_then_deltas_replay_byte_identically(
            self, tmp_path):
        write_stream(tmp_path / "instance-0", sample_stream()[:2])

        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(
                b"GET /ws/live HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Upgrade: websocket\r\n"
                b"Connection: Upgrade\r\n"
                b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n"
                b"Sec-WebSocket-Version: 13\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"101 Switching Protocols" in head
            assert (b"Sec-WebSocket-Accept: "
                    b"s3pPLMBiTxaQ9kYGzzhZRbK+xOo=") in head

            _, payload = await _read_frame(reader)
            frame = json.loads(payload)
            assert frame["type"] == "snapshot"
            replayed = frame["snapshot"]

            # Grow the stream while connected; deltas must arrive.
            write_stream(tmp_path / "instance-0",
                         sample_stream()[2:], mode="a")
            while True:
                _, payload = await asyncio.wait_for(
                    _read_frame(reader), timeout=5.0)
                frame = json.loads(payload)
                assert frame["type"] == "delta"
                TelemetryAggregator.apply_delta(replayed,
                                                frame["delta"])
                if replayed["seq"] == server.service.aggregator.seq:
                    break
            writer.close()
            return replayed

        replayed = serve(tmp_path, check)
        post_hoc = AggregatorService(str(tmp_path))
        post_hoc.poll()
        assert (canonical_json(replayed) ==
                canonical_json(post_hoc.aggregator.snapshot()))

    def test_missing_key_is_rejected(self, tmp_path):
        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"GET /ws/live HTTP/1.1\r\n"
                         b"Upgrade: websocket\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            assert b"400 Bad Request" in raw
            writer.close()

        serve(tmp_path, check)
